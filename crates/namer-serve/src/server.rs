//! The `namer serve` engine and transports.
//!
//! Layering (DESIGN.md §13):
//!
//! * [`Engine`] — resident detection state: a [`ModelHost`] (one model
//!   or a [`ModelRegistry`]), an LRU-bounded map of warm
//!   [`DetectSession`]s (one per model, each with its own cache
//!   subdirectory), and the executable methods `file.analyze` /
//!   `model.load` / `cache.flush` / `file.watch` / `file.unwatch`,
//!   each returning a serialized result body (all but `file.unwatch`
//!   carrying a per-request [`MetricsSnapshot`]).
//! * [`ServeState`] — the transport-agnostic protocol layer:
//!   [`ServeState::handle_line`] maps one wire line to at most one
//!   response line plus any `file.findings` notifications the request
//!   triggered for `file.watch` subscriptions, enforcing the
//!   `initialize` handshake, protocol versioning, and shutdown
//!   semantics. It is synchronous and deterministic, which is what the
//!   golden transcripts pin.
//! * Transports — [`serve_transcript`] (in-memory, for tests),
//!   [`serve_stdio`] (serial loop), and [`serve_listener`] (TCP: one
//!   reader + writer thread pair per connection, all requests funneled
//!   through a bounded queue into a single executor that owns the
//!   [`ServeState`]). A full queue rejects the request immediately with
//!   a typed `server_busy` error — requests are never buffered
//!   unboundedly.
//!
//! Cache persistence is deferred: sessions are built with
//! `cache_autosave(false)` and every transport calls
//! [`ServeState::after_response`] *after* the response line is written,
//! so a crash between response write and cache save is a first-class,
//! fault-injectable ordering (`tests/serve_faults.rs`). Flush failures
//! keep the in-memory cache warm and dirty; the daemon degrades cold on
//! restart, never wrong.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use namer_core::{
    fix_line, DetectSession, ModelRegistry, NamerBuilder, NamerConfig, NamerError, Report,
    RetryPolicy, SavedModel, Vfs,
};
use namer_observe::{
    Counter, MetricsSink, MetricsSnapshot, Observer, Phase, PipelineMetrics, Tee,
};
use namer_syntax::SourceFile;
use serde_json::Value;

use crate::proto::{
    params_from, parse_line, render_err, render_notification, render_ok, AnalyzeFile,
    AnalyzeParams, AnalyzeResult, CacheFlushParams, CacheFlushResult, CacheSummary, Capabilities,
    ErrorKind, Finding, FindingsEvent, InitializeParams, InitializeResult, ModelLoadParams,
    ModelLoadResult, Request, RpcError, Summary, UnwatchParams, UnwatchResult, WatchParams,
    WatchResult, METHODS, OK_TRUE, PONG, PROTOCOL_VERSION,
};

/// Server configuration. `detect` carries the detection knobs
/// (threads, shard plan, mining/classifier config) shared by every
/// resident session; the remaining fields are daemon policy.
pub struct ServeConfig {
    /// Detection configuration applied to every session.
    pub detect: NamerConfig,
    /// Root directory for per-model scan caches
    /// (`<root>/<model>/scan-cache.json`); `None` runs cacheless.
    pub cache_root: Option<PathBuf>,
    /// Bounded request-queue depth for the TCP transport; overflow is
    /// rejected with `server_busy`.
    pub queue_capacity: usize,
    /// Most-recently-used sessions kept resident; older ones are
    /// flushed and evicted.
    pub max_resident_sessions: usize,
    /// Zero wall-clock fields in per-request snapshots
    /// (`MetricsSnapshot::scrub_timings`) so responses are
    /// byte-deterministic.
    pub scrub_timings: bool,
    /// Transient-I/O retry policy for session cache loads/saves.
    pub retry: RetryPolicy,
    /// Filesystem seam; swap in a `FaultVfs` to fault-inject the
    /// daemon.
    pub vfs: Arc<dyn Vfs>,
    /// Optional daemon-wide aggregate sink; per-request collectors tee
    /// into it, and busy rejections are counted here.
    pub metrics: Option<Arc<dyn MetricsSink>>,
}

impl ServeConfig {
    /// Daemon defaults around the given detection config: cacheless,
    /// queue of 64, 4 resident sessions, real filesystem, timings kept.
    pub fn new(detect: NamerConfig) -> ServeConfig {
        ServeConfig {
            detect,
            cache_root: None,
            queue_capacity: 64,
            max_resident_sessions: 4,
            scrub_timings: false,
            retry: RetryPolicy::default(),
            vfs: Arc::new(namer_core::RealFs),
            metrics: None,
        }
    }
}

/// Where the daemon's models come from.
pub enum ModelHost {
    /// Exactly one model, loaded up front (CLI `--model FILE`).
    Single {
        /// The name clients address it by (the file stem).
        name: String,
        /// The loaded model.
        model: Arc<SavedModel>,
    },
    /// A lazy multi-model registry (CLI `--model-dir DIR`).
    Registry(Arc<ModelRegistry>),
}

impl ModelHost {
    /// Every model name this host can serve, sorted.
    pub fn models(&self) -> Vec<String> {
        match self {
            ModelHost::Single { name, .. } => vec![name.clone()],
            ModelHost::Registry(reg) => reg.names(),
        }
    }
}

/// Per-connection protocol state: whether `initialize` has completed,
/// plus the connection's `file.watch` subscriptions. Shared between
/// the connection's reader thread and the executor.
#[derive(Debug, Default)]
pub struct ConnCtx {
    initialized: AtomicBool,
    /// Watched files keyed `(repo, path)`, each holding the serialized
    /// findings baseline the next `file.findings` push diffs against.
    /// `BTreeMap` so any whole-table iteration is deterministic.
    watches: Mutex<BTreeMap<(String, String), String>>,
}

impl ConnCtx {
    /// A fresh, uninitialized connection.
    pub fn new() -> ConnCtx {
        ConnCtx::default()
    }

    fn is_initialized(&self) -> bool {
        self.initialized.load(Ordering::SeqCst)
    }

    fn set_initialized(&self) {
        self.initialized.store(true, Ordering::SeqCst);
    }

    /// Number of watched files on this connection.
    pub fn watch_count(&self) -> usize {
        self.watches.lock().expect("watch table lock").len()
    }
}

/// Resident detection state shared by every connection.
struct Engine {
    config: ServeConfig,
    host: ModelHost,
    sessions: HashMap<String, DetectSession>,
    /// Model names, least-recently-used first.
    recency: Vec<String>,
}

impl Engine {
    fn new(config: ServeConfig, host: ModelHost) -> Engine {
        Engine {
            config,
            host,
            sessions: HashMap::new(),
            recency: Vec::new(),
        }
    }

    fn shared_sink(&self) -> Option<Arc<dyn MetricsSink>> {
        self.config.metrics.clone()
    }

    /// Resolves the model name a request addresses.
    fn resolve_name(&self, requested: Option<&str>) -> Result<String, RpcError> {
        match &self.host {
            ModelHost::Single { name, .. } => match requested {
                None => Ok(name.clone()),
                Some(r) if r == name => Ok(name.clone()),
                Some(r) => Err(RpcError::new(
                    ErrorKind::ModelError,
                    format!("unknown model {r:?} (serving {name:?})"),
                )),
            },
            ModelHost::Registry(reg) => match requested {
                Some(r) => Ok(r.to_owned()),
                None => reg.sole_name().map(str::to_owned).ok_or_else(|| {
                    RpcError::new(
                        ErrorKind::InvalidParams,
                        format!(
                            "params.model required ({} models hosted: {})",
                            reg.len(),
                            reg.names().join(", ")
                        ),
                    )
                }),
            },
        }
    }

    fn load_model(&self, name: &str) -> Result<Arc<SavedModel>, RpcError> {
        match &self.host {
            ModelHost::Single { model, .. } => Ok(model.clone()),
            ModelHost::Registry(reg) => reg.get(name).map_err(|e| {
                RpcError::new(ErrorKind::ModelError, format!("model {name:?}: {e}"))
            }),
        }
    }

    /// Marks `name` most recently used.
    fn touch(&mut self, name: &str) {
        self.recency.retain(|n| n != name);
        self.recency.push(name.to_owned());
    }

    /// Ensures a warm session for `name` is resident, building it (and
    /// recording a `model_load` phase span) on first use. A cache
    /// directory that cannot be opened degrades the session to
    /// cacheless — cold, never wrong.
    fn ensure_session(&mut self, name: &str, obs: Observer<'_>) -> Result<(), RpcError> {
        if self.sessions.contains_key(name) {
            self.touch(name);
            return Ok(());
        }
        let model = {
            let _span = obs.phase(Phase::ModelLoad);
            self.load_model(name)?
        };
        let session = {
            let config = &self.config;
            let build = |cache_dir: Option<PathBuf>| -> Result<DetectSession, NamerError> {
                let mut builder = NamerBuilder::new()
                    .shared(model.clone())
                    .config(config.detect.clone())
                    .cache_autosave(false)
                    .vfs(config.vfs.clone())
                    .retry_policy(config.retry);
                if let Some(sink) = &config.metrics {
                    builder = builder.metrics(sink.clone());
                }
                if let Some(dir) = cache_dir {
                    builder = builder.cache_dir(dir);
                }
                builder.build()
            };
            let rpc = |e: NamerError| {
                RpcError::new(ErrorKind::ModelError, format!("building session for {name:?}"))
                    .with_detail(e.to_string())
            };
            match config.cache_root.as_ref().map(|root| root.join(safe_component(name))) {
                Some(dir) => match build(Some(dir)) {
                    Ok(session) => session,
                    Err(NamerError::Io { .. }) => {
                        obs.add(Counter::CacheDegradedCold, 1);
                        build(None).map_err(rpc)?
                    }
                    Err(e) => return Err(rpc(e)),
                },
                None => build(None).map_err(rpc)?,
            }
        };
        self.sessions.insert(name.to_owned(), session);
        self.touch(name);
        self.evict_over_budget();
        Ok(())
    }

    /// Evicts least-recently-used sessions beyond the residency budget,
    /// flushing their dirty caches first (flush failures only cost
    /// warmth).
    fn evict_over_budget(&mut self) {
        let budget = self.config.max_resident_sessions.max(1);
        while self.sessions.len() > budget {
            let victim = self.recency.remove(0);
            if let Some(mut session) = self.sessions.remove(&victim) {
                let _ = session.flush_cache();
            }
        }
    }

    /// `file.analyze`.
    fn analyze(
        &mut self,
        conn: &ConnCtx,
        params: AnalyzeParams,
        notes: &mut Vec<String>,
    ) -> Result<String, RpcError> {
        let collector = PipelineMetrics::new();
        let aggregate = self.shared_sink();
        let (outcome, files) = match &aggregate {
            Some(sink) => {
                let tee = Tee(&collector, sink.as_ref());
                self.analyze_observed(&params, Observer::new(&tee))?
            }
            None => self.analyze_observed(&params, Observer::new(&collector))?,
        };
        let mut findings: Vec<Finding> = outcome
            .reports
            .iter()
            .map(|report| finding(report, &files))
            .collect();
        // Watched files diff against the unfiltered findings: a
        // `changed_only` filter must not mask a watched file whose
        // findings went away.
        let mut seen = HashSet::new();
        for file in &files {
            if !seen.insert((file.repo.as_str(), file.path.as_str())) {
                continue;
            }
            let per_file: Vec<Finding> = findings
                .iter()
                .filter(|f| f.repo == file.repo && f.path == file.path)
                .cloned()
                .collect();
            sync_watch(
                conn,
                &file.repo,
                &file.path,
                per_file,
                false,
                notes,
                &collector,
                aggregate.as_deref(),
            );
        }
        if params.changed_only {
            if let Some(cache) = &outcome.cache {
                let changed: HashSet<(&str, &str)> = cache
                    .changed
                    .iter()
                    .map(|(repo, path)| (repo.as_str(), path.as_str()))
                    .collect();
                findings.retain(|f| changed.contains(&(f.repo.as_str(), f.path.as_str())));
            }
        }
        let summary = Summary {
            files: files.len(),
            findings: findings.len(),
            cache: outcome.cache.as_ref().map(|c| CacheSummary {
                reused: c.reused,
                fresh: c.fresh,
                parse_failures: c.parse_failures,
                changed: c.changed.len(),
            }),
        };
        let mut metrics = merge_serve_metrics(outcome.metrics, collector.snapshot());
        if self.config.scrub_timings {
            metrics.scrub_timings();
        }
        let result = AnalyzeResult {
            findings,
            summary,
            diagnostics: outcome.diagnostics,
            metrics,
        };
        serialize_result(&result)
    }

    fn analyze_observed(
        &mut self,
        params: &AnalyzeParams,
        obs: Observer<'_>,
    ) -> Result<(namer_core::DetectOutcome, Vec<SourceFile>), RpcError> {
        let _span = obs.phase(Phase::Serve);
        obs.add(Counter::ServeRequests, 1);
        if params.files.is_empty() {
            return Err(RpcError::new(
                ErrorKind::InvalidParams,
                "params.files must not be empty",
            ));
        }
        if params.changed_only && self.config.cache_root.is_none() {
            return Err(RpcError::new(
                ErrorKind::InvalidParams,
                "changed_only requires a server started with --cache-dir",
            ));
        }
        let name = self.resolve_name(params.model.as_deref())?;
        self.ensure_session(&name, obs)?;
        let session = self.sessions.get_mut(&name).expect("session just ensured");
        let lang = session.namer().lang();
        let files: Vec<SourceFile> = params.files.iter().map(|f| source_file(f, lang)).collect();
        let outcome = session.run(&files).map_err(|e| {
            RpcError::new(ErrorKind::Internal, "detection failed").with_detail(e.to_string())
        })?;
        Ok((outcome, files))
    }

    /// `model.load`.
    fn model_load(&mut self, params: ModelLoadParams) -> Result<String, RpcError> {
        let collector = PipelineMetrics::new();
        let aggregate = self.shared_sink();
        let (model, lang) = match &aggregate {
            Some(sink) => {
                let tee = Tee(&collector, sink.as_ref());
                self.model_load_observed(&params, Observer::new(&tee))?
            }
            None => self.model_load_observed(&params, Observer::new(&collector))?,
        };
        let mut metrics = collector.snapshot();
        if self.config.scrub_timings {
            metrics.scrub_timings();
        }
        serialize_result(&ModelLoadResult { model, lang, metrics })
    }

    fn model_load_observed(
        &mut self,
        params: &ModelLoadParams,
        obs: Observer<'_>,
    ) -> Result<(String, String), RpcError> {
        let _span = obs.phase(Phase::Serve);
        obs.add(Counter::ServeRequests, 1);
        let name = self.resolve_name(Some(&params.model))?;
        self.ensure_session(&name, obs)?;
        let lang = self.sessions.get(&name).expect("session just ensured").namer().lang();
        Ok((name, lang.to_string()))
    }

    /// `cache.flush`.
    fn cache_flush(&mut self, params: CacheFlushParams) -> Result<String, RpcError> {
        let collector = PipelineMetrics::new();
        let aggregate = self.shared_sink();
        let (flushed, cleared) = match &aggregate {
            Some(sink) => {
                let tee = Tee(&collector, sink.as_ref());
                self.cache_flush_observed(&params, Observer::new(&tee))?
            }
            None => self.cache_flush_observed(&params, Observer::new(&collector))?,
        };
        let mut metrics = collector.snapshot();
        if self.config.scrub_timings {
            metrics.scrub_timings();
        }
        serialize_result(&CacheFlushResult { flushed, cleared, metrics })
    }

    fn cache_flush_observed(
        &mut self,
        params: &CacheFlushParams,
        obs: Observer<'_>,
    ) -> Result<(Vec<String>, Vec<String>), RpcError> {
        let _span = obs.phase(Phase::Serve);
        obs.add(Counter::ServeRequests, 1);
        let mut names: Vec<String> = match &params.model {
            Some(model) => {
                let name = self.resolve_name(Some(model))?;
                // Only resident sessions have anything to flush.
                self.sessions.contains_key(&name).then_some(name).into_iter().collect()
            }
            None => self.sessions.keys().cloned().collect(),
        };
        names.sort();
        let mut flushed = Vec::new();
        let mut cleared = Vec::new();
        for name in names {
            let session = self.sessions.get_mut(&name).expect("resident session");
            if params.clear && session.clear_cache() {
                cleared.push(name.clone());
            }
            match session.flush_cache_observed(obs) {
                Ok(true) => flushed.push(name),
                Ok(false) => {}
                Err(e) => {
                    return Err(RpcError::new(
                        ErrorKind::Internal,
                        format!("cache flush failed for {name:?}"),
                    )
                    .with_detail(e.to_string()));
                }
            }
        }
        Ok((flushed, cleared))
    }

    /// `file.watch`: analyze the file now, register (or refresh) the
    /// subscription, and return the current findings. Re-sending
    /// `file.watch` with edited content is the client's change signal:
    /// when the new findings differ from the stored baseline a
    /// `file.findings` notification is pushed after the response.
    fn watch(
        &mut self,
        conn: &ConnCtx,
        params: WatchParams,
        notes: &mut Vec<String>,
    ) -> Result<String, RpcError> {
        let collector = PipelineMetrics::new();
        let aggregate = self.shared_sink();
        let analyze = AnalyzeParams {
            files: vec![AnalyzeFile {
                repo: params.repo.clone(),
                path: params.path.clone(),
                content: params.content.clone(),
            }],
            model: params.model.clone(),
            changed_only: false,
        };
        let (outcome, files) = match &aggregate {
            Some(sink) => {
                let tee = Tee(&collector, sink.as_ref());
                self.analyze_observed(&analyze, Observer::new(&tee))?
            }
            None => self.analyze_observed(&analyze, Observer::new(&collector))?,
        };
        let findings: Vec<Finding> = outcome
            .reports
            .iter()
            .map(|report| finding(report, &files))
            .collect();
        sync_watch(
            conn,
            &files[0].repo,
            &files[0].path,
            findings.clone(),
            true,
            notes,
            &collector,
            aggregate.as_deref(),
        );
        let mut metrics = merge_serve_metrics(outcome.metrics, collector.snapshot());
        if self.config.scrub_timings {
            metrics.scrub_timings();
        }
        serialize_result(&WatchResult {
            watching: conn.watch_count(),
            findings,
            metrics,
        })
    }

    /// `file.unwatch`: drop one subscription. Pure bookkeeping — no
    /// detection runs and no metrics snapshot is attached.
    fn unwatch(&mut self, conn: &ConnCtx, params: UnwatchParams) -> Result<String, RpcError> {
        let key = (
            params.repo.unwrap_or_else(|| "client".to_owned()),
            params.path,
        );
        let removed = conn
            .watches
            .lock()
            .expect("watch table lock")
            .remove(&key)
            .is_some();
        serialize_result(&UnwatchResult {
            removed,
            watching: conn.watch_count(),
        })
    }

    /// Persists every resident session's dirty cache. Called by
    /// transports after each response line is written; failures are
    /// returned for logging and leave the cache warm and dirty.
    fn flush_dirty(&mut self) -> Vec<(String, NamerError)> {
        let mut errors = Vec::new();
        let mut names: Vec<String> = self.sessions.keys().cloned().collect();
        names.sort();
        let aggregate = self.shared_sink();
        for name in names {
            let session = self.sessions.get_mut(&name).expect("resident session");
            if session.cache_dirty() != Some(true) {
                continue;
            }
            let saved = match &aggregate {
                Some(sink) => session.flush_cache_observed(Observer::new(sink.as_ref())),
                None => session.flush_cache(),
            };
            if let Err(e) = saved {
                errors.push((name, e));
            }
        }
        errors
    }
}

/// The protocol layer: owns the [`Engine`] and maps wire lines to
/// response lines. Synchronous — transports decide how lines reach it.
pub struct ServeState {
    engine: Engine,
    stopping: bool,
    stop: Option<Arc<AtomicBool>>,
}

impl ServeState {
    /// Builds the daemon state (no I/O happens until requests arrive;
    /// registry models load lazily on first use).
    pub fn new(config: ServeConfig, host: ModelHost) -> ServeState {
        ServeState {
            engine: Engine::new(config, host),
            stopping: false,
            stop: None,
        }
    }

    /// Like [`ServeState::new`], also raising `stop` when `shutdown`
    /// is accepted (used by the TCP accept loop).
    pub fn with_stop(config: ServeConfig, host: ModelHost, stop: Arc<AtomicBool>) -> ServeState {
        ServeState {
            engine: Engine::new(config, host),
            stopping: false,
            stop: Some(stop),
        }
    }

    /// True once `shutdown` has been accepted.
    pub fn is_stopping(&self) -> bool {
        self.stopping
    }

    /// Handles one wire line for one connection, returning the
    /// response line (without trailing newline) followed by any
    /// `file.findings` notification lines the request triggered, in
    /// that order. Blank input yields no lines.
    pub fn handle_line(&mut self, conn: &ConnCtx, line: &str) -> Vec<String> {
        let line = line.trim();
        if line.is_empty() {
            return Vec::new();
        }
        let req = match parse_line(line) {
            Ok(req) => req,
            Err((id, err)) => return vec![render_err(id.as_ref(), &err)],
        };
        let mut notes = Vec::new();
        let response = match self.dispatch(conn, &req, &mut notes) {
            Ok(result) => render_ok(&req.id, &result),
            Err(err) => {
                // A failed request pushes nothing.
                notes.clear();
                render_err(Some(&req.id), &err)
            }
        };
        let mut out = Vec::with_capacity(1 + notes.len());
        out.push(response);
        out.append(&mut notes);
        out
    }

    /// Runs deferred cache persistence. Transports call this *after*
    /// writing the response line, making "crash between response write
    /// and cache save" a real, testable kill-point ordering. Errors
    /// are returned for logging; the cache stays warm and dirty.
    pub fn after_response(&mut self) -> Vec<(String, NamerError)> {
        self.engine.flush_dirty()
    }

    fn dispatch(
        &mut self,
        conn: &ConnCtx,
        req: &Request,
        notes: &mut Vec<String>,
    ) -> Result<String, RpcError> {
        if self.stopping {
            return Err(RpcError::new(ErrorKind::ShuttingDown, "server is shutting down"));
        }
        match req.method.as_str() {
            "initialize" => {
                if conn.is_initialized() {
                    return Err(RpcError::new(
                        ErrorKind::AlreadyInitialized,
                        "connection already initialized",
                    ));
                }
                let params: InitializeParams = params_from(&req.params)?;
                if params.protocol != PROTOCOL_VERSION {
                    return Err(RpcError::new(
                        ErrorKind::IncompatibleProtocol,
                        format!(
                            "unsupported protocol {} (server speaks {PROTOCOL_VERSION})",
                            params.protocol
                        ),
                    ));
                }
                conn.set_initialized();
                serialize_result(&InitializeResult {
                    protocol: PROTOCOL_VERSION,
                    server: "namer-serve",
                    version: env!("CARGO_PKG_VERSION"),
                    models: self.engine.host.models(),
                    methods: METHODS.to_vec(),
                    capabilities: Capabilities {
                        watch: true,
                        stmt_regions: true,
                        languages: namer_syntax::lang::all()
                            .iter()
                            .map(|l| l.cli_name())
                            .collect(),
                    },
                })
            }
            _ if !conn.is_initialized() => Err(RpcError::new(
                ErrorKind::NotInitialized,
                format!("call initialize before {}", req.method),
            )),
            "ping" => Ok(PONG.to_owned()),
            "shutdown" => {
                self.stopping = true;
                if let Some(stop) = &self.stop {
                    stop.store(true, Ordering::SeqCst);
                }
                Ok(OK_TRUE.to_owned())
            }
            "file.analyze" => self.engine.analyze(conn, params_from(&req.params)?, notes),
            "model.load" => self.engine.model_load(params_from(&req.params)?),
            "cache.flush" => self.engine.cache_flush(params_from(&req.params)?),
            "file.watch" => self.engine.watch(conn, params_from(&req.params)?, notes),
            "file.unwatch" => self.engine.unwatch(conn, params_from(&req.params)?),
            other => Err(RpcError::new(
                ErrorKind::MethodNotFound,
                format!("unknown method {other:?}"),
            )),
        }
    }
}

/// Runs a whole newline-delimited request transcript through a fresh
/// daemon on one connection and returns the newline-delimited
/// responses. The in-memory transport: golden-transcript tests and
/// fault matrices drive this.
pub fn serve_transcript(config: ServeConfig, host: ModelHost, input: &str) -> String {
    let mut state = ServeState::new(config, host);
    let conn = ConnCtx::new();
    let mut out = String::new();
    for line in input.lines() {
        let lines = state.handle_line(&conn, line);
        if lines.is_empty() {
            continue;
        }
        for resp in lines {
            out.push_str(&resp);
            out.push('\n');
        }
        let _ = state.after_response();
    }
    out
}

/// Serves one connection over stdio, one request per line, until EOF
/// or `shutdown`. Responses are flushed before deferred cache saves
/// run.
pub fn serve_stdio(config: ServeConfig, host: ModelHost) -> io::Result<()> {
    let mut state = ServeState::new(config, host);
    let conn = ConnCtx::new();
    let stdin = io::stdin();
    let mut stdout = io::stdout().lock();
    for line in stdin.lock().lines() {
        let line = line?;
        let lines = state.handle_line(&conn, &line);
        if !lines.is_empty() {
            for resp in lines {
                stdout.write_all(resp.as_bytes())?;
                stdout.write_all(b"\n")?;
            }
            stdout.flush()?;
            for (name, err) in state.after_response() {
                eprintln!("namer serve: cache flush failed for {name}: {err} (will retry)");
            }
        }
        if state.is_stopping() {
            break;
        }
    }
    Ok(())
}

/// One queued unit of work: a raw request line plus where to send the
/// response.
struct Job {
    line: String,
    conn: Arc<ConnCtx>,
    reply: mpsc::Sender<String>,
}

/// Serves a bound TCP listener until a client sends `shutdown`.
///
/// Concurrency model: each connection gets a reader thread and a
/// writer thread; readers `try_send` into one bounded queue feeding a
/// single executor thread that owns the [`ServeState`] (detection
/// itself parallelizes inside the session across file threads ×
/// pattern shards). A full queue rejects immediately with
/// `server_busy` — bounded memory under overload. Responses for one
/// connection always return in request order.
pub fn serve_listener(config: ServeConfig, host: ModelHost, listener: TcpListener) -> io::Result<()> {
    let queue_capacity = config.queue_capacity.max(1);
    let aggregate = config.metrics.clone();
    let stop = Arc::new(AtomicBool::new(false));
    let (job_tx, job_rx) = mpsc::sync_channel::<Job>(queue_capacity);
    let mut state = ServeState::with_stop(config, host, stop.clone());
    let executor = thread::spawn(move || {
        while let Ok(job) = job_rx.recv() {
            for resp in state.handle_line(&job.conn, &job.line) {
                // A dropped connection is the client's problem, not the
                // daemon's: the response is discarded, state stays good.
                let _ = job.reply.send(resp);
            }
            for (name, err) in state.after_response() {
                eprintln!("namer serve: cache flush failed for {name}: {err} (will retry)");
            }
        }
    });
    listener.set_nonblocking(true)?;
    let mut connections = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let job_tx = job_tx.clone();
                let stop = stop.clone();
                let aggregate = aggregate.clone();
                connections.push(thread::spawn(move || {
                    let _ = handle_connection(stream, job_tx, stop, aggregate);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
    drop(job_tx);
    for handle in connections {
        let _ = handle.join();
    }
    let _ = executor.join();
    Ok(())
}

/// Reader half of one TCP connection: frames lines, applies
/// backpressure, and spawns the paired writer thread.
fn handle_connection(
    stream: TcpStream,
    job_tx: SyncSender<Job>,
    stop: Arc<AtomicBool>,
    aggregate: Option<Arc<dyn MetricsSink>>,
) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    // Poll the stop flag between reads so idle connections cannot keep
    // the daemon alive after shutdown.
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let write_half = stream.try_clone()?;
    let (reply_tx, reply_rx) = mpsc::channel::<String>();
    let writer = thread::spawn(move || {
        let mut out = BufWriter::new(write_half);
        while let Ok(resp) = reply_rx.recv() {
            if out.write_all(resp.as_bytes()).is_err()
                || out.write_all(b"\n").is_err()
                || out.flush().is_err()
            {
                break;
            }
        }
    });
    let conn = Arc::new(ConnCtx::new());
    let mut reader = BufReader::new(stream);
    let mut buf = String::new();
    loop {
        buf.clear();
        match reader.read_line(&mut buf) {
            Ok(0) => break,
            Ok(_) => {
                let line = buf.trim();
                if line.is_empty() {
                    continue;
                }
                let job = Job {
                    line: line.to_owned(),
                    conn: conn.clone(),
                    reply: reply_tx.clone(),
                };
                match job_tx.try_send(job) {
                    Ok(()) => {}
                    Err(TrySendError::Full(job)) => {
                        if let Some(sink) = &aggregate {
                            sink.add(Counter::ServeRejectedBusy, 1);
                        }
                        let _ = job.reply.send(busy_response(&job.line));
                    }
                    Err(TrySendError::Disconnected(job)) => {
                        let _ = job.reply.send(overload_response(
                            &job.line,
                            ErrorKind::ShuttingDown,
                            "server is shutting down",
                        ));
                        break;
                    }
                }
            }
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    drop(reply_tx);
    let _ = writer.join();
    Ok(())
}

/// Builds the typed `server_busy` rejection for a raw request line,
/// echoing its id when one can be recovered.
fn busy_response(line: &str) -> String {
    overload_response(line, ErrorKind::ServerBusy, "request queue full; retry later")
}

fn overload_response(line: &str, kind: ErrorKind, message: &str) -> String {
    let id = serde_json::from_str::<Value>(line)
        .ok()
        .and_then(|v| v.get("id").cloned())
        .filter(|v| matches!(v, Value::String(_) | Value::Number(_) | Value::Null));
    render_err(id.as_ref(), &RpcError::new(kind, message))
}

/// Diffs one file's findings against the connection's watch baseline.
///
/// Not watched: does nothing unless `register` is set, which installs
/// the findings as the new baseline silently (the registering
/// `file.watch` response already carries them). Watched and unchanged:
/// does nothing. Watched and changed: updates the baseline, bumps
/// [`Counter::WatchEvents`], and appends a `file.findings` notification
/// line to `notes`. Returns whether a notification was emitted.
#[allow(clippy::too_many_arguments)]
fn sync_watch(
    conn: &ConnCtx,
    repo: &str,
    path: &str,
    findings: Vec<Finding>,
    register: bool,
    notes: &mut Vec<String>,
    collector: &PipelineMetrics,
    aggregate: Option<&dyn MetricsSink>,
) -> bool {
    let Ok(rendered) = serde_json::to_string(&findings) else {
        return false;
    };
    let key = (repo.to_owned(), path.to_owned());
    let changed = {
        let mut watches = conn.watches.lock().expect("watch table lock");
        match watches.get(&key) {
            Some(prev) => {
                let changed = *prev != rendered;
                if changed {
                    watches.insert(key, rendered);
                }
                changed
            }
            None if register => {
                watches.insert(key, rendered);
                false
            }
            None => false,
        }
    };
    if changed {
        collector.add(Counter::WatchEvents, 1);
        if let Some(sink) = aggregate {
            sink.add(Counter::WatchEvents, 1);
        }
        let event = FindingsEvent {
            repo: repo.to_owned(),
            path: path.to_owned(),
            findings,
        };
        if let Ok(body) = serde_json::to_string(&event) {
            notes.push(render_notification("file.findings", &body));
        }
    }
    changed
}

/// Projects one `Report` onto the wire, attaching the fixed source
/// line when the rewrite is unambiguous.
fn finding(report: &Report, files: &[SourceFile]) -> Finding {
    let v = &report.violation;
    let fixed = files
        .iter()
        .find(|f| f.repo == v.repo && f.path == v.path)
        .and_then(|f| f.text.lines().nth(v.line.saturating_sub(1) as usize))
        .and_then(|line| fix_line(line, v.original.as_str(), v.suggested.as_str()));
    Finding {
        repo: v.repo.clone(),
        path: v.path.clone(),
        line: v.line,
        original: v.original.as_str().to_owned(),
        suggested: v.suggested.as_str().to_owned(),
        pattern: v.pattern_ty.to_string(),
        decision: report.decision,
        rendered: v.rendered.clone(),
        fixed,
    }
}

fn source_file(file: &AnalyzeFile, lang: namer_syntax::Lang) -> SourceFile {
    SourceFile::new(
        file.repo.clone().unwrap_or_else(|| "client".to_owned()),
        file.path.clone(),
        file.content.clone(),
        lang,
    )
}

/// Merges the serve-level collector (request counter, `serve` and
/// `model_load` spans) into the session outcome's snapshot by summing
/// counters and phase stats. The serve collector never records shard
/// data, so the shard fields keep the outcome's values.
fn merge_serve_metrics(mut base: MetricsSnapshot, extra: MetricsSnapshot) -> MetricsSnapshot {
    for (name, value) in extra.counters {
        if value != 0 {
            *base.counters.entry(name).or_insert(0) += value;
        }
    }
    for (name, stat) in extra.phases {
        if stat.calls == 0 && stat.wall_nanos == 0 && stat.busy_nanos == 0 {
            continue;
        }
        let merged = base.phases.entry(name).or_default();
        merged.calls += stat.calls;
        merged.wall_nanos += stat.wall_nanos;
        merged.busy_nanos += stat.busy_nanos;
    }
    base
}

fn serialize_result<T: serde::Serialize>(result: &T) -> Result<String, RpcError> {
    serde_json::to_string(result).map_err(|e| {
        RpcError::new(ErrorKind::Internal, "result serialization failed").with_detail(e.to_string())
    })
}

/// Maps a model name onto a safe cache-subdirectory component.
fn safe_component(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_safe_component_sanitizes_separators() {
        assert_eq!(safe_component("py-model.bin"), "py-model.bin");
        assert_eq!(safe_component("a/b\\c:d"), "a_b_c_d");
    }

    #[test]
    fn serve_busy_response_recovers_legal_ids_only() {
        let resp = busy_response("{\"jsonrpc\":\"2.0\",\"id\":9,\"method\":\"ping\"}");
        assert_eq!(
            resp,
            "{\"jsonrpc\":\"2.0\",\"id\":9,\"error\":{\"code\":-32000,\
             \"message\":\"request queue full; retry later\",\
             \"data\":{\"kind\":\"server_busy\"}}}"
        );
        let resp = busy_response("{\"id\":[1]}");
        assert!(resp.starts_with("{\"jsonrpc\":\"2.0\",\"id\":null,"));
        let resp = busy_response("not json");
        assert!(resp.starts_with("{\"jsonrpc\":\"2.0\",\"id\":null,"));
    }

    #[test]
    fn serve_merge_sums_counters_and_phases() {
        let a = PipelineMetrics::new();
        a.add(Counter::FilesProcessed, 3);
        {
            let obs = Observer::new(&a);
            let _span = obs.phase(Phase::Scan);
        }
        let b = PipelineMetrics::new();
        b.add(Counter::FilesProcessed, 2);
        b.add(Counter::ServeRequests, 1);
        {
            let obs = Observer::new(&b);
            let _span = obs.phase(Phase::Serve);
        }
        let merged = merge_serve_metrics(a.snapshot(), b.snapshot());
        assert_eq!(merged.counter(Counter::FilesProcessed), 5);
        assert_eq!(merged.counter(Counter::ServeRequests), 1);
        assert_eq!(merged.phase(Phase::Scan).calls, 1);
        assert_eq!(merged.phase(Phase::Serve).calls, 1);
    }
}
