//! Arena-allocated abstract syntax trees.
//!
//! Definition 3.1 of the paper models a statement AST as
//! `⟨N, T, r, δ, V, ϕ⟩`: non-terminals `N`, terminals `T`, root `r`, child
//! function `δ`, values `V`, and value assignment `ϕ`. [`Ast`] realises this
//! with an index-based arena: `δ` is [`Ast::children`] and `ϕ` is
//! [`Ast::value`]. Nodes are identified by [`NodeId`]s local to their arena.

use crate::intern::Sym;
use std::fmt;

/// Index of a node within one [`Ast`] arena.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the index as a `usize` for slice indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Classification of a terminal node's value.
///
/// The AST+ transformation (§3.1 of the paper) needs to know which terminals
/// carry identifier names (to split into subtokens), which carry literals
/// (to abstract into `NUM`/`STR`/`BOOL`), and which are structural keywords.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TermKind {
    /// An identifier name written by the developer.
    Ident,
    /// A numeric literal.
    Num,
    /// A string literal.
    Str,
    /// A boolean literal.
    Bool,
    /// A null-like literal (`None`, `null`).
    Null,
    /// Anything else (operators, keywords that survive into the tree).
    Other,
}

/// What role an identifier terminal plays, used for origin decoration.
///
/// §3.1 step 4 inserts origin nodes above *object names* and above *function
/// calls* (keyed on the receiver object). The parsers record the role so the
/// transformation does not have to re-derive it from context.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum NameRole {
    /// Not a name, or a name with no interesting role.
    #[default]
    None,
    /// A variable / object reference (e.g. `self`, `picture`).
    Object,
    /// The called function or method name (e.g. `assertTrue`).
    Function,
    /// A type name (class reference, declared type).
    Type,
}

#[derive(Clone, Debug)]
struct Node {
    value: Sym,
    kind: Option<TermKind>, // `None` ⇒ non-terminal
    role: NameRole,
    children: Vec<NodeId>,
    line: u32,
}

/// An arena-based abstract syntax tree (Definition 3.1).
///
/// # Examples
///
/// ```
/// use namer_syntax::ast::{Ast, TermKind};
/// let mut ast = Ast::new();
/// let callee = ast.terminal("print", TermKind::Ident);
/// let arg = ast.terminal("STR", TermKind::Str);
/// let call = ast.non_terminal("Call", vec![callee, arg]);
/// ast.set_root(call);
/// assert_eq!(ast.children(call).len(), 2);
/// assert_eq!(ast.value(callee).as_str(), "print");
/// ```
#[derive(Clone, Debug, Default)]
pub struct Ast {
    nodes: Vec<Node>,
    root: Option<NodeId>,
}

impl Ast {
    /// Creates an empty tree with no root.
    pub fn new() -> Ast {
        Ast::default()
    }

    /// Number of nodes in the arena.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the arena holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, node: Node) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("AST too large"));
        self.nodes.push(node);
        id
    }

    /// Allocates a terminal node.
    pub fn terminal(&mut self, value: impl Into<Sym>, kind: TermKind) -> NodeId {
        self.push(Node {
            value: value.into(),
            kind: Some(kind),
            role: NameRole::None,
            children: Vec::new(),
            line: 0,
        })
    }

    /// Allocates a non-terminal node with the given children.
    pub fn non_terminal(&mut self, value: impl Into<Sym>, children: Vec<NodeId>) -> NodeId {
        self.push(Node {
            value: value.into(),
            kind: None,
            role: NameRole::None,
            children,
            line: 0,
        })
    }

    /// Sets the root node `r`.
    pub fn set_root(&mut self, root: NodeId) {
        self.root = Some(root);
    }

    /// The root node `r`.
    ///
    /// # Panics
    ///
    /// Panics if no root has been set.
    pub fn root(&self) -> NodeId {
        self.root.expect("AST has no root")
    }

    /// The root node, or `None` for an unrooted arena.
    pub fn try_root(&self) -> Option<NodeId> {
        self.root
    }

    /// The value `ϕ(n)` of a node.
    pub fn value(&self, id: NodeId) -> Sym {
        self.nodes[id.index()].value
    }

    /// The child list `δ(n)` (empty for terminals).
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.index()].children
    }

    /// Returns `true` if the node is a terminal.
    pub fn is_terminal(&self, id: NodeId) -> bool {
        self.nodes[id.index()].kind.is_some()
    }

    /// The terminal kind, or `None` for non-terminals.
    pub fn term_kind(&self, id: NodeId) -> Option<TermKind> {
        self.nodes[id.index()].kind
    }

    /// The name role annotation of a node.
    pub fn role(&self, id: NodeId) -> NameRole {
        self.nodes[id.index()].role
    }

    /// Annotates a node with a name role.
    pub fn set_role(&mut self, id: NodeId, role: NameRole) {
        self.nodes[id.index()].role = role;
    }

    /// 1-based source line of the node (0 when unknown).
    pub fn line(&self, id: NodeId) -> u32 {
        self.nodes[id.index()].line
    }

    /// Records the 1-based source line of the node.
    pub fn set_line(&mut self, id: NodeId, line: u32) {
        self.nodes[id.index()].line = line;
    }

    /// Replaces the children of a non-terminal.
    ///
    /// # Panics
    ///
    /// Panics if `id` is a terminal node.
    pub fn set_children(&mut self, id: NodeId, children: Vec<NodeId>) {
        assert!(!self.is_terminal(id), "terminals cannot have children");
        self.nodes[id.index()].children = children;
    }

    /// Pre-order iterator over the subtree rooted at `id`.
    pub fn preorder(&self, id: NodeId) -> Preorder<'_> {
        Preorder {
            ast: self,
            stack: vec![id],
        }
    }

    /// Pre-order iterator over the whole tree.
    pub fn iter(&self) -> Preorder<'_> {
        match self.try_root() {
            Some(root) => self.preorder(root),
            None => Preorder {
                ast: self,
                stack: Vec::new(),
            },
        }
    }

    /// Deep-copies the subtree rooted at `src_id` of `src` into `self`.
    ///
    /// Returns the new root and appends `(new, old)` node pairs to `map`
    /// so callers can relate copied nodes back to their originals.
    pub fn copy_subtree(
        &mut self,
        src: &Ast,
        src_id: NodeId,
        map: &mut Vec<(NodeId, NodeId)>,
    ) -> NodeId {
        let node = &src.nodes[src_id.index()];
        let children: Vec<NodeId> = node
            .children
            .iter()
            .map(|&c| self.copy_subtree(src, c, map))
            .collect();
        let new = self.push(Node {
            value: node.value,
            kind: node.kind,
            role: node.role,
            children,
            line: node.line,
        });
        map.push((new, src_id));
        new
    }

    /// Terminal leaves of the subtree rooted at `id`, left to right.
    pub fn leaves(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.collect_leaves(id, &mut out);
        out
    }

    fn collect_leaves(&self, id: NodeId, out: &mut Vec<NodeId>) {
        if self.is_terminal(id) {
            out.push(id);
        } else {
            for &c in self.children(id) {
                self.collect_leaves(c, out);
            }
        }
    }

    /// Renders the subtree rooted at `id` as an s-expression.
    ///
    /// Intended for debugging and golden tests; terminals print their value,
    /// non-terminals print `(Value child…)`.
    pub fn to_sexp(&self, id: NodeId) -> String {
        let mut s = String::new();
        self.write_sexp(id, &mut s);
        s
    }

    fn write_sexp(&self, id: NodeId, out: &mut String) {
        if self.is_terminal(id) {
            out.push_str(self.value(id).as_str());
        } else {
            out.push('(');
            out.push_str(self.value(id).as_str());
            for &c in self.children(id) {
                out.push(' ');
                self.write_sexp(c, out);
            }
            out.push(')');
        }
    }

    /// Structural hash of the subtree rooted at `id` (value + shape).
    ///
    /// Two subtrees get the same digest iff they are structurally identical,
    /// which is how the pipeline counts "identical statements" (features 2–3
    /// of Table 1) and how the AST differ matches unchanged nodes.
    pub fn digest(&self, id: NodeId) -> u64 {
        // FNV-1a over a pre-order serialisation.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        self.digest_into(id, &mut h);
        h
    }

    fn digest_into(&self, id: NodeId, h: &mut u64) {
        fn mix(h: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *h ^= u64::from(b);
                *h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        mix(h, self.value(id).as_str().as_bytes());
        mix(h, &[if self.is_terminal(id) { 1 } else { 0 }]);
        mix(h, &(self.children(id).len() as u32).to_le_bytes());
        for c in self.children(id).to_vec() {
            self.digest_into(c, h);
        }
    }
}

/// Pre-order traversal iterator returned by [`Ast::preorder`].
#[derive(Debug)]
pub struct Preorder<'a> {
    ast: &'a Ast,
    stack: Vec<NodeId>,
}

impl Iterator for Preorder<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.stack.pop()?;
        for &c in self.ast.children(id).iter().rev() {
            self.stack.push(c);
        }
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Ast, NodeId) {
        let mut ast = Ast::new();
        let a = ast.terminal("self", TermKind::Ident);
        let b = ast.terminal("assertTrue", TermKind::Ident);
        let attr = ast.non_terminal("AttributeLoad", vec![a, b]);
        let num = ast.terminal("90", TermKind::Num);
        let call = ast.non_terminal("Call", vec![attr, num]);
        ast.set_root(call);
        (ast, call)
    }

    #[test]
    fn sexp_rendering() {
        let (ast, root) = sample();
        assert_eq!(ast.to_sexp(root), "(Call (AttributeLoad self assertTrue) 90)");
    }

    #[test]
    fn preorder_visits_all_nodes_once() {
        let (ast, root) = sample();
        let visited: Vec<_> = ast.preorder(root).collect();
        assert_eq!(visited.len(), ast.len());
        let mut sorted = visited.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), visited.len());
    }

    #[test]
    fn leaves_are_left_to_right() {
        let (ast, root) = sample();
        let vals: Vec<&str> = ast
            .leaves(root)
            .into_iter()
            .map(|n| ast.value(n).as_str())
            .collect();
        assert_eq!(vals, ["self", "assertTrue", "90"]);
    }

    #[test]
    fn copy_subtree_preserves_structure() {
        let (ast, root) = sample();
        let mut dst = Ast::new();
        let mut map = Vec::new();
        let new_root = dst.copy_subtree(&ast, root, &mut map);
        dst.set_root(new_root);
        assert_eq!(dst.to_sexp(new_root), ast.to_sexp(root));
        assert_eq!(map.len(), ast.len());
    }

    #[test]
    fn digest_distinguishes_values_and_shape() {
        let (ast, root) = sample();
        let mut other = Ast::new();
        let a = other.terminal("self", TermKind::Ident);
        let b = other.terminal("assertEqual", TermKind::Ident);
        let attr = other.non_terminal("AttributeLoad", vec![a, b]);
        let num = other.terminal("90", TermKind::Num);
        let call = other.non_terminal("Call", vec![attr, num]);
        other.set_root(call);
        assert_ne!(ast.digest(root), other.digest(call));
    }

    #[test]
    fn digest_equal_for_identical_trees() {
        let (a, ra) = sample();
        let (b, rb) = sample();
        assert_eq!(a.digest(ra), b.digest(rb));
    }

    #[test]
    fn roles_round_trip() {
        let (mut ast, root) = sample();
        let leaf = ast.leaves(root)[0];
        ast.set_role(leaf, NameRole::Object);
        assert_eq!(ast.role(leaf), NameRole::Object);
    }
}
