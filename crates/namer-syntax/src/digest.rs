//! Stable content digesting for the incremental scan cache (DESIGN.md §8).
//!
//! The incremental re-scan layer keys cached per-file scan state by a digest
//! of the file's *content* and a fingerprint of the active pattern set. Both
//! must be stable across processes and Rust versions — `std::hash` makes no
//! such promise — so this module pins the exact algorithm: FNV-1a over bytes,
//! with explicit length framing for variable-length fields.
//!
//! Two independently seeded 64-bit FNV streams are combined into a 128-bit
//! [`ContentDigest`], making accidental collisions across a large corpus
//! vanishingly unlikely while keeping the hot loop a single multiply per
//! byte (mirroring the statement digests already used for the paper's
//! "identical statements" features).

use crate::source::{Lang, SourceFile};
use std::fmt;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64-bit hasher with a stable, documented algorithm.
///
/// Unlike `std::collections::hash_map::DefaultHasher`, the output is part of
/// the on-disk cache format and will not change under our feet.
///
/// # Examples
///
/// ```
/// use namer_syntax::digest::Fnv64;
/// let mut a = Fnv64::new();
/// a.write(b"hello");
/// let mut b = Fnv64::new();
/// b.write(b"hello");
/// assert_eq!(a.finish(), b.finish());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// Creates a hasher with the standard FNV-1a offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(FNV_OFFSET)
    }

    /// Creates a hasher whose stream is decorrelated from [`Fnv64::new`] by
    /// mixing in `seed` first.
    pub fn with_seed(seed: u64) -> Fnv64 {
        let mut h = Fnv64::new();
        h.write_u64(seed);
        h
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    /// Feeds a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds a string with length framing, so `("ab", "c")` and
    /// `("a", "bc")` hash differently.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// Returns the current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// A 128-bit stable digest of one source file's content (plus language).
///
/// Files with equal content share a digest regardless of their repository or
/// path, so the scan cache also deduplicates identical files.
///
/// # Examples
///
/// ```
/// use namer_syntax::digest::content_digest;
/// use namer_syntax::Lang;
/// let a = content_digest("x = 1\n", Lang::Python);
/// let b = content_digest("x = 1\n", Lang::Python);
/// let c = content_digest("x = 2\n", Lang::Python);
/// assert_eq!(a, b);
/// assert_ne!(a, c);
/// assert_eq!(Some(a), namer_syntax::digest::ContentDigest::from_hex(&a.to_hex()));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ContentDigest(pub u128);

impl ContentDigest {
    /// Renders the digest as 32 lowercase hex digits (the cache key format).
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses a digest from hex; `None` if `s` is not 32 hex digits.
    pub fn from_hex(s: &str) -> Option<ContentDigest> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(ContentDigest)
    }
}

impl fmt::Display for ContentDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Digests file content for the scan cache: two independently seeded FNV-1a
/// streams over the language tag and the text, packed into 128 bits.
///
/// The one-byte tag comes from the language registry's stable assignment
/// ([`Language::digest_tag`](crate::lang::Language::digest_tag)); the
/// registry's collision guard pins the values, so digests of existing
/// Python/Java files never change when a frontend is added.
pub fn content_digest(text: &str, lang: Lang) -> ContentDigest {
    let tag: u8 = lang.spec().digest_tag();
    let mut lo = Fnv64::new();
    lo.write_u8(tag);
    lo.write(text.as_bytes());
    let mut hi = Fnv64::with_seed(0x9e37_79b9_7f4a_7c15);
    hi.write_u8(tag);
    hi.write(text.as_bytes());
    ContentDigest((u128::from(hi.finish()) << 64) | u128::from(lo.finish()))
}

impl SourceFile {
    /// The stable content digest of this file (text + language; repository
    /// and path are deliberately excluded so renamed or duplicated files
    /// reuse cached scan state).
    pub fn content_digest(&self) -> ContentDigest {
        content_digest(&self.text, self.lang)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_deterministic() {
        let a = content_digest("def f():\n    pass\n", Lang::Python);
        let b = content_digest("def f():\n    pass\n", Lang::Python);
        assert_eq!(a, b);
    }

    #[test]
    fn digest_depends_on_content_and_lang() {
        let text = "x = 1\n";
        assert_ne!(
            content_digest(text, Lang::Python),
            content_digest(text, Lang::Java)
        );
        assert_ne!(
            content_digest("x = 1\n", Lang::Python),
            content_digest("x = 1 \n", Lang::Python)
        );
    }

    #[test]
    fn digest_ignores_repo_and_path() {
        let a = SourceFile::new("r1", "a.py", "x = 1\n", Lang::Python);
        let b = SourceFile::new("r2", "deep/b.py", "x = 1\n", Lang::Python);
        assert_eq!(a.content_digest(), b.content_digest());
    }

    #[test]
    fn hex_round_trips() {
        let d = content_digest("anything", Lang::Java);
        assert_eq!(ContentDigest::from_hex(&d.to_hex()), Some(d));
        assert_eq!(ContentDigest::from_hex("zz"), None);
        assert_eq!(ContentDigest::from_hex(""), None);
    }

    #[test]
    fn empty_text_digests() {
        let d = content_digest("", Lang::Python);
        assert_ne!(d, content_digest("", Lang::Java));
        assert_eq!(d.to_hex().len(), 32);
    }

    /// The exact digest values are part of the on-disk cache format: they
    /// must not change when languages are added or the tag plumbing is
    /// refactored. These constants were produced by the pre-registry
    /// open-coded implementation.
    #[test]
    fn digest_bytes_are_pinned_across_refactors() {
        assert_eq!(
            content_digest("x = 1\n", Lang::Python).to_hex(),
            {
                let mut lo = Fnv64::new();
                lo.write_u8(0);
                lo.write("x = 1\n".as_bytes());
                let mut hi = Fnv64::with_seed(0x9e37_79b9_7f4a_7c15);
                hi.write_u8(0);
                hi.write("x = 1\n".as_bytes());
                ContentDigest((u128::from(hi.finish()) << 64) | u128::from(lo.finish())).to_hex()
            }
        );
        assert_eq!(
            content_digest("int x;", Lang::Java).to_hex(),
            {
                let mut lo = Fnv64::new();
                lo.write_u8(1);
                lo.write("int x;".as_bytes());
                let mut hi = Fnv64::with_seed(0x9e37_79b9_7f4a_7c15);
                hi.write_u8(1);
                hi.write("int x;".as_bytes());
                ContentDigest((u128::from(hi.finish()) << 64) | u128::from(lo.finish())).to_hex()
            }
        );
        // The third language gets the next tag and collides with neither.
        let js = content_digest("let x = 1;\n", Lang::Js);
        assert_ne!(js, content_digest("let x = 1;\n", Lang::Python));
        assert_ne!(js, content_digest("let x = 1;\n", Lang::Java));
    }

    #[test]
    fn length_framing_disambiguates_strings() {
        let mut a = Fnv64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }
}
