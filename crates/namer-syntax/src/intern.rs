//! Global string interning.
//!
//! Pattern mining compares AST node values across millions of files, so node
//! values are interned into cheap, `Copy` [`Sym`] handles that are comparable
//! process-wide. The interner is a global append-only table guarded by an
//! `RwLock`; lookups of already-interned strings take the read path only.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

/// An interned string.
///
/// Two `Sym`s compare equal iff the strings they intern are equal, regardless
/// of which file or thread interned them. The ordering of `Sym` is the
/// arbitrary (but stable within a process) interning order, which is what the
/// FP-tree miner uses as its canonical item order.
///
/// # Examples
///
/// ```
/// use namer_syntax::Sym;
/// let a = Sym::intern("assertTrue");
/// let b = Sym::intern("assertTrue");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "assertTrue");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(u32);

struct Interner {
    names: Vec<&'static str>,
    table: HashMap<&'static str, u32>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            names: Vec::new(),
            table: HashMap::new(),
        })
    })
}

impl Sym {
    /// Interns `s`, returning its global symbol.
    pub fn intern(s: &str) -> Sym {
        {
            let int = interner().read();
            if let Some(&id) = int.table.get(s) {
                return Sym(id);
            }
        }
        let mut int = interner().write();
        if let Some(&id) = int.table.get(s) {
            return Sym(id);
        }
        let id = u32::try_from(int.names.len()).expect("interner overflow");
        // Interned strings live for the process lifetime; leaking them gives
        // us `&'static str` handles without unsafe code.
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        int.names.push(leaked);
        int.table.insert(leaked, id);
        Sym(id)
    }

    /// Returns the interned string.
    pub fn as_str(self) -> &'static str {
        interner().read().names[self.0 as usize]
    }

    /// Returns the raw index of this symbol in the global table.
    ///
    /// Useful as a dense array key; indices are assigned in interning order.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({:?})", self.as_str())
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        Sym::intern(s)
    }
}

impl From<String> for Sym {
    fn from(s: String) -> Sym {
        Sym::intern(&s)
    }
}

impl serde::Serialize for Sym {
    fn serialize<S: serde::Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        ser.serialize_str(self.as_str())
    }
}

impl<'de> serde::Deserialize<'de> for Sym {
    fn deserialize<D: serde::Deserializer<'de>>(de: D) -> Result<Sym, D::Error> {
        let s = String::deserialize(de)?;
        Ok(Sym::intern(&s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let a = Sym::intern("foo");
        let b = Sym::intern("foo");
        assert_eq!(a, b);
        assert_eq!(a.index(), b.index());
    }

    #[test]
    fn distinct_strings_get_distinct_syms() {
        assert_ne!(Sym::intern("foo"), Sym::intern("bar"));
    }

    #[test]
    fn round_trips_through_as_str() {
        let s = Sym::intern("NumArgs(2)");
        assert_eq!(s.as_str(), "NumArgs(2)");
    }

    #[test]
    fn display_matches_content() {
        assert_eq!(Sym::intern("Call").to_string(), "Call");
    }

    #[test]
    fn concurrent_interning_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| Sym::intern("concurrent-key")))
            .collect();
        let syms: Vec<Sym> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(syms.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn empty_string_is_internable() {
        assert_eq!(Sym::intern("").as_str(), "");
    }
}
