//! Global string and name-path-prefix interning.
//!
//! Pattern mining compares AST node values across millions of files, so node
//! values are interned into cheap, `Copy` [`Sym`] handles that are comparable
//! process-wide. Whole name-path prefixes (`Vec<(Sym, u32)>`) are likewise
//! interned into dense [`PrefixId`] handles, so the innermost match loops of
//! mining and scanning key their hash maps on a `u32` instead of hashing and
//! cloning vectors. Both interners are global append-only tables guarded by
//! an `RwLock`; lookups of already-interned entries take the read path only.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

/// An interned string.
///
/// Two `Sym`s compare equal iff the strings they intern are equal, regardless
/// of which file or thread interned them. The ordering of `Sym` is the
/// arbitrary (but stable within a process) interning order, which is what the
/// FP-tree miner uses as its canonical item order.
///
/// # Examples
///
/// ```
/// use namer_syntax::Sym;
/// let a = Sym::intern("assertTrue");
/// let b = Sym::intern("assertTrue");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "assertTrue");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(u32);

struct Interner {
    names: Vec<&'static str>,
    table: HashMap<&'static str, u32>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            names: Vec::new(),
            table: HashMap::new(),
        })
    })
}

impl Sym {
    /// Interns `s`, returning its global symbol.
    pub fn intern(s: &str) -> Sym {
        {
            let int = interner().read();
            if let Some(&id) = int.table.get(s) {
                return Sym(id);
            }
        }
        let mut int = interner().write();
        if let Some(&id) = int.table.get(s) {
            return Sym(id);
        }
        let id = u32::try_from(int.names.len()).expect("interner overflow");
        // Interned strings live for the process lifetime; leaking them gives
        // us `&'static str` handles without unsafe code.
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        int.names.push(leaked);
        int.table.insert(leaked, id);
        Sym(id)
    }

    /// Returns the interned string.
    pub fn as_str(self) -> &'static str {
        interner().read().names[self.0 as usize]
    }

    /// Returns the raw index of this symbol in the global table.
    ///
    /// Useful as a dense array key; indices are assigned in interning order.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({:?})", self.as_str())
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        Sym::intern(s)
    }
}

impl From<String> for Sym {
    fn from(s: String) -> Sym {
        Sym::intern(&s)
    }
}

/// An interned name-path prefix: the `S` of a name path `⟨S, n⟩`, reduced to
/// a dense, `Copy` `u32` handle.
///
/// Two `PrefixId`s compare equal iff the `(Sym, u32)` sequences they intern
/// are equal, regardless of which thread interned them. `PathSet` and
/// `PatternSet` key their prefix indexes on `PrefixId`, so the per-statement
/// match loop hashes a single `u32` instead of a `Vec<(Sym, u32)>`.
///
/// # Examples
///
/// ```
/// use namer_syntax::{PrefixId, Sym};
/// let prefix = vec![(Sym::intern("Assign"), 0), (Sym::intern("NameLoad"), 0)];
/// let a = PrefixId::intern(&prefix);
/// let b = PrefixId::intern(&prefix);
/// assert_eq!(a, b);
/// assert_eq!(a.as_slice(), &prefix[..]);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PrefixId(u32);

struct PrefixInterner {
    prefixes: Vec<&'static [(Sym, u32)]>,
    table: HashMap<&'static [(Sym, u32)], u32>,
}

fn prefix_interner() -> &'static RwLock<PrefixInterner> {
    static INTERNER: OnceLock<RwLock<PrefixInterner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(PrefixInterner {
            prefixes: Vec::new(),
            table: HashMap::new(),
        })
    })
}

impl PrefixId {
    /// Interns `prefix`, returning its global id.
    pub fn intern(prefix: &[(Sym, u32)]) -> PrefixId {
        {
            let int = prefix_interner().read();
            if let Some(&id) = int.table.get(prefix) {
                return PrefixId(id);
            }
        }
        let mut int = prefix_interner().write();
        if let Some(&id) = int.table.get(prefix) {
            return PrefixId(id);
        }
        let id = u32::try_from(int.prefixes.len()).expect("prefix interner overflow");
        // Like interned strings, interned prefixes live for the process
        // lifetime; leaking gives `&'static` handles without unsafe code.
        let leaked: &'static [(Sym, u32)] = Box::leak(prefix.to_vec().into_boxed_slice());
        int.prefixes.push(leaked);
        int.table.insert(leaked, id);
        PrefixId(id)
    }

    /// Returns the interned prefix.
    pub fn as_slice(self) -> &'static [(Sym, u32)] {
        prefix_interner().read().prefixes[self.0 as usize]
    }

    /// Returns the raw index of this prefix in the global table.
    ///
    /// Useful as a dense array key; indices are assigned in interning order.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl serde::Serialize for Sym {
    fn serialize<S: serde::Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        ser.serialize_str(self.as_str())
    }
}

impl<'de> serde::Deserialize<'de> for Sym {
    fn deserialize<D: serde::Deserializer<'de>>(de: D) -> Result<Sym, D::Error> {
        let s = String::deserialize(de)?;
        Ok(Sym::intern(&s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let a = Sym::intern("foo");
        let b = Sym::intern("foo");
        assert_eq!(a, b);
        assert_eq!(a.index(), b.index());
    }

    #[test]
    fn distinct_strings_get_distinct_syms() {
        assert_ne!(Sym::intern("foo"), Sym::intern("bar"));
    }

    #[test]
    fn round_trips_through_as_str() {
        let s = Sym::intern("NumArgs(2)");
        assert_eq!(s.as_str(), "NumArgs(2)");
    }

    #[test]
    fn display_matches_content() {
        assert_eq!(Sym::intern("Call").to_string(), "Call");
    }

    #[test]
    fn concurrent_interning_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| Sym::intern("concurrent-key")))
            .collect();
        let syms: Vec<Sym> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(syms.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn empty_string_is_internable() {
        assert_eq!(Sym::intern("").as_str(), "");
    }

    #[test]
    fn prefix_intern_is_idempotent() {
        let prefix = vec![(Sym::intern("Call"), 0), (Sym::intern("Attr"), 1)];
        let a = PrefixId::intern(&prefix);
        let b = PrefixId::intern(&prefix);
        assert_eq!(a, b);
        assert_eq!(a.as_slice(), &prefix[..]);
    }

    #[test]
    fn distinct_prefixes_get_distinct_ids() {
        let a = PrefixId::intern(&[(Sym::intern("Call"), 0)]);
        let b = PrefixId::intern(&[(Sym::intern("Call"), 1)]);
        let c = PrefixId::intern(&[(Sym::intern("Attr"), 0)]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn empty_prefix_is_internable() {
        let id = PrefixId::intern(&[]);
        assert!(id.as_slice().is_empty());
        assert_eq!(PrefixId::intern(&[]), id);
    }

    #[test]
    fn concurrent_prefix_interning_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    PrefixId::intern(&[(Sym::intern("concurrent-prefix"), 3)])
                })
            })
            .collect();
        let ids: Vec<PrefixId> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }
}
