//! Java lexer.

use crate::source::ParseError;

/// One Java token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Name(String),
    /// Numeric literal (spelling preserved, suffixes included).
    Number(String),
    /// String literal (contents).
    Str(String),
    /// Character literal (contents).
    Char(String),
    /// Operator or punctuation.
    Op(&'static str),
    /// End of input.
    Eof,
}

/// A token with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based line number.
    pub line: u32,
}

const OPERATORS: &[&str] = &[
    ">>>=", "<<=", ">>=", ">>>", "...", "==", "!=", "<=", ">=", "&&", "||", "++", "--", "+=",
    "-=", "*=", "/=", "%=", "&=", "|=", "^=", "->", "::", "<<", ">>", "(", ")", "[", "]", "{", "}",
    ";", ",", ".", "=", "+", "-", "*", "/", "%", "&", "|", "^", "!", "~", "<", ">", "?", ":",
    "@",
];

/// Tokenises Java source.
///
/// # Errors
///
/// Returns [`ParseError`] on unterminated strings/comments or unexpected
/// characters.
pub fn lex(src: &str) -> Result<Vec<Spanned>, ParseError> {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                let start_line = line;
                i += 2;
                loop {
                    if i + 1 >= chars.len() {
                        return Err(ParseError::new(start_line, "unterminated block comment"));
                    }
                    if chars[i] == '*' && chars[i + 1] == '/' {
                        i += 2;
                        break;
                    }
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            '"' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= chars.len() || chars[i] == '\n' {
                        return Err(ParseError::new(line, "unterminated string literal"));
                    }
                    if chars[i] == '\\' && i + 1 < chars.len() {
                        s.push(chars[i]);
                        s.push(chars[i + 1]);
                        i += 2;
                        continue;
                    }
                    if chars[i] == '"' {
                        i += 1;
                        break;
                    }
                    s.push(chars[i]);
                    i += 1;
                }
                out.push(Spanned {
                    tok: Tok::Str(s),
                    line,
                });
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= chars.len() || chars[i] == '\n' {
                        return Err(ParseError::new(line, "unterminated char literal"));
                    }
                    if chars[i] == '\\' && i + 1 < chars.len() {
                        s.push(chars[i]);
                        s.push(chars[i + 1]);
                        i += 2;
                        continue;
                    }
                    if chars[i] == '\'' {
                        i += 1;
                        break;
                    }
                    s.push(chars[i]);
                    i += 1;
                }
                out.push(Spanned {
                    tok: Tok::Char(s),
                    line,
                });
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                let hex = c == '0' && matches!(chars.get(i + 1), Some('x') | Some('X'));
                if hex {
                    i += 2;
                }
                while i < chars.len()
                    && (chars[i].is_ascii_alphanumeric() || chars[i] == '_' || chars[i] == '.')
                {
                    if chars[i] == '.' && !chars.get(i + 1).is_some_and(|c| c.is_ascii_digit()) {
                        break;
                    }
                    // Signed exponents: 1e-3
                    if (chars[i] == 'e' || chars[i] == 'E')
                        && !hex
                        && matches!(chars.get(i + 1), Some('+') | Some('-'))
                    {
                        i += 2;
                        continue;
                    }
                    i += 1;
                }
                out.push(Spanned {
                    tok: Tok::Number(chars[start..i].iter().collect()),
                    line,
                });
            }
            _ if c.is_alphabetic() || c == '_' || c == '$' => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '$')
                {
                    i += 1;
                }
                out.push(Spanned {
                    tok: Tok::Name(chars[start..i].iter().collect()),
                    line,
                });
            }
            _ => {
                let rest: String = chars[i..chars.len().min(i + 4)].iter().collect();
                let op = OPERATORS
                    .iter()
                    .find(|&&op| rest.starts_with(op))
                    .copied()
                    .ok_or_else(|| ParseError::new(line, format!("unexpected character {c:?}")))?;
                out.push(Spanned {
                    tok: Tok::Op(op),
                    line,
                });
                i += op.len();
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn simple_statement() {
        assert_eq!(
            toks("int x = 1;"),
            vec![
                Tok::Name("int".into()),
                Tok::Name("x".into()),
                Tok::Op("="),
                Tok::Number("1".into()),
                Tok::Op(";"),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let t = toks("// header\nint x; /* multi\nline */ int y;");
        assert_eq!(t.iter().filter(|t| matches!(t, Tok::Name(_))).count(), 4);
    }

    #[test]
    fn string_and_char_literals() {
        assert_eq!(toks(r#"s = "hi";"#)[2], Tok::Str("hi".into()));
        assert_eq!(toks("c = 'a';")[2], Tok::Char("a".into()));
    }

    #[test]
    fn escapes_preserved() {
        assert_eq!(toks(r#"s = "a\"b";"#)[2], Tok::Str(r#"a\"b"#.into()));
    }

    #[test]
    fn numbers_with_suffixes() {
        assert_eq!(toks("x = 10L;")[2], Tok::Number("10L".into()));
        assert_eq!(toks("x = 1.5f;")[2], Tok::Number("1.5f".into()));
        assert_eq!(toks("x = 0xFF;")[2], Tok::Number("0xFF".into()));
    }

    #[test]
    fn shift_operators() {
        assert_eq!(toks("x >>>= 1;")[1], Tok::Op(">>>="));
        assert_eq!(toks("x >> 1;")[1], Tok::Op(">>"));
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(lex("/* oops").is_err());
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("s = \"oops\n\"").is_err());
    }

    #[test]
    fn dollar_identifiers() {
        assert_eq!(toks("a$b = 1;")[0], Tok::Name("a$b".into()));
    }

    #[test]
    fn line_numbers() {
        let s = lex("int a;\nint b;").unwrap();
        let b = s.iter().find(|s| s.tok == Tok::Name("b".into())).unwrap();
        assert_eq!(b.line, 2);
    }
}
