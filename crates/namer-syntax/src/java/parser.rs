//! Recursive-descent parser for a broad Java subset.
//!
//! The parser covers the class/member/statement/expression forms that
//! dominate real GitHub Java: classes and interfaces, fields, methods and
//! constructors, generics in type position, `new`, enhanced and classic
//! `for`, `try`/`catch`, and the usual expression grammar. Node shapes reuse
//! the shared [`vocab`] so the pattern miner treats both
//! languages uniformly (method calls become `Call`/`AttributeLoad`/`Attr`
//! exactly as in Python).

use super::lexer::{lex, Spanned, Tok};
use crate::ast::{Ast, NameRole, NodeId, TermKind};
use crate::source::ParseError;
use crate::vocab;

const KEYWORDS: &[&str] = &[
    "abstract", "assert", "boolean", "break", "byte", "case", "catch", "char", "class", "const",
    "continue", "default", "do", "double", "else", "enum", "extends", "final", "finally", "float",
    "for", "goto", "if", "implements", "import", "instanceof", "int", "interface", "long",
    "native", "new", "package", "private", "protected", "public", "return", "short", "static",
    "strictfp", "super", "switch", "synchronized", "this", "throw", "throws", "transient", "try",
    "void", "volatile", "while",
];

const MODIFIERS: &[&str] = &[
    "public", "private", "protected", "static", "final", "abstract", "synchronized", "native",
    "transient", "volatile", "strictfp", "default",
];

const PRIMITIVES: &[&str] = &[
    "boolean", "byte", "char", "short", "int", "long", "float", "double", "void",
];

/// Parses Java source into a [`Module`](crate::vocab::module)-rooted AST.
///
/// # Errors
///
/// Returns [`ParseError`] for syntax outside the supported subset.
///
/// # Examples
///
/// ```
/// let ast = namer_syntax::java::parse(
///     "class A { void f() { this.publicKey = publickKey; } }",
/// )?;
/// assert_eq!(ast.value(ast.root()).as_str(), "Module");
/// # Ok::<(), namer_syntax::ParseError>(())
/// ```
pub fn parse(src: &str) -> Result<Ast, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        ast: Ast::new(),
    };
    let mut kids = Vec::new();
    p.skip_annotations()?;
    if p.at_kw("package") {
        p.bump();
        let name = p.parse_dotted_name()?;
        p.expect_op(";")?;
        kids.push(p.ast.non_terminal(vocab::package_decl(), vec![name]));
    }
    loop {
        p.skip_annotations()?;
        if p.at_kw("import") {
            p.bump();
            p.eat_kw("static");
            let mut name = p.parse_dotted_name()?;
            if p.eat_op(".") {
                p.expect_op("*")?;
                let star = p.ast.terminal("*", TermKind::Other);
                name = p.ast.non_terminal(vocab::attribute_load(), vec![name, star]);
            }
            p.expect_op(";")?;
            kids.push(p.ast.non_terminal(vocab::import_stmt(), vec![name]));
        } else {
            break;
        }
    }
    loop {
        p.skip_annotations()?;
        if matches!(p.peek(), Tok::Eof) {
            break;
        }
        kids.push(p.parse_type_decl()?);
    }
    let root = p.ast.non_terminal(vocab::module(), kids);
    p.ast.set_root(root);
    Ok(p.ast)
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    ast: Ast,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek_at(&self, off: usize) -> &Tok {
        let idx = (self.pos + off).min(self.toks.len() - 1);
        &self.toks[idx].tok
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_op(&mut self, op: &str) -> bool {
        if matches!(self.peek(), Tok::Op(o) if *o == op) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_op(&mut self, op: &str) -> Result<(), ParseError> {
        if self.eat_op(op) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("expected {op:?}")))
        }
    }


    /// Consumes one `>` in type position, splitting `>>`/`>>>` tokens that
    /// the lexer produced for shift operators.
    fn expect_close_angle(&mut self) -> Result<(), ParseError> {
        match self.peek() {
            Tok::Op(">") => {
                self.bump();
                Ok(())
            }
            Tok::Op(">>") => {
                self.toks[self.pos].tok = Tok::Op(">");
                Ok(())
            }
            Tok::Op(">>>") => {
                self.toks[self.pos].tok = Tok::Op(">>");
                Ok(())
            }
            _ => Err(self.unexpected("expected '>'")),
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Name(n) if n == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("expected keyword {kw:?}")))
        }
    }

    fn expect_name(&mut self) -> Result<(String, u32), ParseError> {
        let line = self.line();
        match self.bump() {
            Tok::Name(n) if !KEYWORDS.contains(&n.as_str()) => Ok((n, line)),
            other => Err(ParseError::new(line, format!("expected name, got {other:?}"))),
        }
    }

    fn unexpected(&self, what: &str) -> ParseError {
        ParseError::new(self.line(), format!("{what}, got {:?}", self.peek()))
    }

    fn name_node(&mut self, wrapper: crate::Sym, name: &str, role: NameRole, line: u32) -> NodeId {
        let term = self.ast.terminal(name, TermKind::Ident);
        self.ast.set_role(term, role);
        self.ast.set_line(term, line);
        let node = self.ast.non_terminal(wrapper, vec![term]);
        self.ast.set_line(node, line);
        node
    }

    fn op_term(&mut self, op: &str) -> NodeId {
        self.ast.terminal(op, TermKind::Other)
    }

    fn skip_annotations(&mut self) -> Result<(), ParseError> {
        while matches!(self.peek(), Tok::Op("@")) {
            self.bump();
            // `@interface` declares an annotation type; leave it to the
            // caller (we treat the body like an interface).
            if self.at_kw("interface") {
                self.pos -= 1;
                return Ok(());
            }
            let _ = self.parse_dotted_name()?;
            if self.eat_op("(") {
                let mut depth = 1;
                while depth > 0 {
                    match self.bump() {
                        Tok::Op("(") => depth += 1,
                        Tok::Op(")") => depth -= 1,
                        Tok::Eof => return Err(self.unexpected("unterminated annotation")),
                        _ => {}
                    }
                }
            }
        }
        Ok(())
    }

    fn skip_modifiers(&mut self) -> Result<(), ParseError> {
        loop {
            self.skip_annotations()?;
            match self.peek() {
                Tok::Name(n) if MODIFIERS.contains(&n.as_str()) => {
                    self.bump();
                }
                _ => return Ok(()),
            }
        }
    }

    fn parse_dotted_name(&mut self) -> Result<NodeId, ParseError> {
        let (first, line) = self.expect_name()?;
        let mut node = self.name_node(vocab::name_load(), &first, NameRole::Object, line);
        while matches!(self.peek(), Tok::Op("."))
            && matches!(self.peek_at(1), Tok::Name(n) if !KEYWORDS.contains(&n.as_str()))
        {
            self.bump();
            let (next, nline) = self.expect_name()?;
            let attr = self.name_node(vocab::attr(), &next, NameRole::Object, nline);
            node = self
                .ast
                .non_terminal(vocab::attribute_load(), vec![node, attr]);
        }
        Ok(node)
    }

    // ----- types -------------------------------------------------------------

    /// Attempts to parse a type; on failure the caller must restore `pos`.
    fn parse_type(&mut self) -> Result<NodeId, ParseError> {
        let line = self.line();
        let mut last_name = match self.bump() {
            Tok::Name(n) if PRIMITIVES.contains(&n.as_str()) => n,
            Tok::Name(n) if !KEYWORDS.contains(&n.as_str()) => n,
            other => {
                return Err(ParseError::new(line, format!("expected type, got {other:?}")));
            }
        };
        // Qualified name: keep the last segment as the simple type name.
        while matches!(self.peek(), Tok::Op("."))
            && matches!(self.peek_at(1), Tok::Name(n) if !KEYWORDS.contains(&n.as_str()))
        {
            self.bump();
            let (seg, _) = self.expect_name()?;
            last_name = seg;
        }
        let term = self.ast.terminal(&*last_name, TermKind::Ident);
        self.ast.set_role(term, NameRole::Type);
        self.ast.set_line(term, line);
        let mut kids = vec![term];
        if self.eat_op("<") {
            // Type arguments, possibly nested. `<>` diamond allowed.
            if !self.eat_op(">") {
                loop {
                    if self.eat_op("?") {
                        if self.eat_kw("extends") || self.eat_kw("super") {
                            kids.push(self.parse_type()?);
                        }
                    } else {
                        kids.push(self.parse_type()?);
                    }
                    if self.eat_op(",") {
                        continue;
                    }
                    self.expect_close_angle()?;
                    break;
                }
            }
        }
        while matches!(self.peek(), Tok::Op("[")) && matches!(self.peek_at(1), Tok::Op("]")) {
            self.bump();
            self.bump();
            kids.push(self.op_term("[]"));
        }
        let node = self.ast.non_terminal(vocab::type_ref(), kids);
        self.ast.set_line(node, line);
        Ok(node)
    }

    // ----- declarations --------------------------------------------------------

    fn parse_type_decl(&mut self) -> Result<NodeId, ParseError> {
        self.skip_modifiers()?;
        self.eat_op("@"); // @interface
        if self.at_kw("class") || self.at_kw("interface") || self.at_kw("enum") {
            self.parse_class_like()
        } else {
            Err(self.unexpected("expected type declaration"))
        }
    }

    fn parse_class_like(&mut self) -> Result<NodeId, ParseError> {
        let line = self.line();
        let is_enum = self.at_kw("enum");
        self.bump(); // class / interface / enum
        let (name, nline) = self.expect_name()?;
        let name_node = self.name_node(vocab::name_store(), &name, NameRole::Type, nline);
        // Type parameters.
        if self.eat_op("<") {
            let mut depth = 1;
            while depth > 0 {
                match self.bump() {
                    Tok::Op("<") => depth += 1,
                    Tok::Op(">") => depth -= 1,
                    Tok::Op(">>") => depth -= 2,
                    Tok::Eof => return Err(self.unexpected("unterminated type parameters")),
                    _ => {}
                }
            }
        }
        let mut bases = Vec::new();
        if self.eat_kw("extends") {
            loop {
                bases.push(self.parse_type()?);
                if !self.eat_op(",") {
                    break;
                }
            }
        }
        if self.eat_kw("implements") {
            loop {
                bases.push(self.parse_type()?);
                if !self.eat_op(",") {
                    break;
                }
            }
        }
        let bases_node = self.ast.non_terminal(vocab::bases(), bases);
        self.expect_op("{")?;
        let mut kids = vec![name_node, bases_node];
        if is_enum {
            // Enum constants.
            loop {
                self.skip_annotations()?;
                if matches!(self.peek(), Tok::Op(";") | Tok::Op("}")) {
                    break;
                }
                let (cname, cline) = self.expect_name()?;
                kids.push(self.name_node(vocab::name_store(), &cname, NameRole::Object, cline));
                if self.eat_op("(") {
                    let mut depth = 1;
                    while depth > 0 {
                        match self.bump() {
                            Tok::Op("(") => depth += 1,
                            Tok::Op(")") => depth -= 1,
                            Tok::Eof => return Err(self.unexpected("unterminated enum ctor")),
                            _ => {}
                        }
                    }
                }
                if !self.eat_op(",") {
                    break;
                }
            }
            self.eat_op(";");
        }
        while !self.eat_op("}") {
            if matches!(self.peek(), Tok::Eof) {
                return Err(self.unexpected("unterminated class body"));
            }
            kids.extend(self.parse_member(&name)?);
        }
        let class = self.ast.non_terminal(vocab::class_def(), kids);
        self.ast.set_line(class, line);
        Ok(class)
    }

    fn parse_member(&mut self, class_name: &str) -> Result<Vec<NodeId>, ParseError> {
        self.skip_modifiers()?;
        if self.eat_op(";") {
            return Ok(vec![]);
        }
        if self.at_kw("class") || self.at_kw("interface") || self.at_kw("enum") {
            return Ok(vec![self.parse_class_like()?]);
        }
        if matches!(self.peek(), Tok::Op("{")) {
            // Instance/static initializer block.
            let body = self.parse_block()?;
            let body_node = self.ast.non_terminal("Body", body);
            return Ok(vec![self.ast.non_terminal("Initializer", vec![body_node])]);
        }
        // Skip method-level type parameters: `<T> T f(...)`.
        if matches!(self.peek(), Tok::Op("<")) {
            let mut depth = 0;
            loop {
                match self.bump() {
                    Tok::Op("<") => depth += 1,
                    Tok::Op(">") => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    Tok::Op(">>") => {
                        depth -= 2;
                        if depth <= 0 {
                            break;
                        }
                    }
                    Tok::Eof => return Err(self.unexpected("unterminated type parameters")),
                    _ => {}
                }
            }
        }
        // Constructor: ClassName '('
        if matches!(self.peek(), Tok::Name(n) if n == class_name)
            && matches!(self.peek_at(1), Tok::Op("("))
        {
            let line = self.line();
            let (name, nline) = self.expect_name()?;
            let name_node = self.name_node(vocab::name_store(), &name, NameRole::Function, nline);
            let params = self.parse_params()?;
            self.skip_throws()?;
            let body = self.parse_block()?;
            let mut kids = vec![name_node, params];
            kids.extend(body);
            let node = self.ast.non_terminal(vocab::ctor_decl(), kids);
            self.ast.set_line(node, line);
            return Ok(vec![node]);
        }
        // Method or field: starts with a type.
        let line = self.line();
        let ty = self.parse_type()?;
        let (name, nline) = self.expect_name()?;
        if matches!(self.peek(), Tok::Op("(")) {
            let name_node = self.name_node(vocab::name_store(), &name, NameRole::Function, nline);
            let params = self.parse_params()?;
            self.skip_throws()?;
            let mut kids = vec![ty, name_node, params];
            if self.eat_op(";") {
                // Abstract / interface method.
            } else {
                kids.extend(self.parse_block()?);
            }
            let node = self.ast.non_terminal(vocab::method_decl(), kids);
            self.ast.set_line(node, line);
            return Ok(vec![node]);
        }
        // Field declaration(s).
        let mut out = Vec::new();
        let mut fname = name;
        let mut fline = nline;
        loop {
            while matches!(self.peek(), Tok::Op("[")) && matches!(self.peek_at(1), Tok::Op("]")) {
                self.bump();
                self.bump();
            }
            let name_node = self.name_node(vocab::name_store(), &fname, NameRole::Object, fline);
            let mut kids = vec![ty, name_node];
            if self.eat_op("=") {
                kids.push(self.parse_expr()?);
            }
            let node = self.ast.non_terminal(vocab::field_decl(), kids);
            self.ast.set_line(node, fline);
            out.push(node);
            if self.eat_op(",") {
                let (n2, l2) = self.expect_name()?;
                fname = n2;
                fline = l2;
                continue;
            }
            self.expect_op(";")?;
            break;
        }
        Ok(out)
    }

    fn parse_params(&mut self) -> Result<NodeId, ParseError> {
        self.expect_op("(")?;
        let mut params = Vec::new();
        while !matches!(self.peek(), Tok::Op(")")) {
            self.skip_modifiers()?;
            let ty = self.parse_type()?;
            let variadic = self.eat_op("...");
            let (name, nline) = self.expect_name()?;
            while matches!(self.peek(), Tok::Op("[")) && matches!(self.peek_at(1), Tok::Op("]")) {
                self.bump();
                self.bump();
            }
            let pnode = self.name_node(vocab::name_param(), &name, NameRole::Object, nline);
            let wrapper = if variadic {
                vocab::star_param()
            } else {
                vocab::param()
            };
            params.push(self.ast.non_terminal(wrapper, vec![ty, pnode]));
            if !self.eat_op(",") {
                break;
            }
        }
        self.expect_op(")")?;
        Ok(self.ast.non_terminal(vocab::params(), params))
    }

    fn skip_throws(&mut self) -> Result<(), ParseError> {
        if self.eat_kw("throws") {
            loop {
                let _ = self.parse_type()?;
                if !self.eat_op(",") {
                    break;
                }
            }
        }
        Ok(())
    }

    // ----- statements ----------------------------------------------------------

    fn parse_block(&mut self) -> Result<Vec<NodeId>, ParseError> {
        self.expect_op("{")?;
        let mut stmts = Vec::new();
        while !self.eat_op("}") {
            if matches!(self.peek(), Tok::Eof) {
                return Err(self.unexpected("unterminated block"));
            }
            stmts.extend(self.parse_statement()?);
        }
        Ok(stmts)
    }

    fn parse_statement(&mut self) -> Result<Vec<NodeId>, ParseError> {
        self.skip_annotations()?;
        let line = self.line();
        match self.peek().clone() {
            Tok::Op("{") => {
                // A bare brace block: splice its statements directly, as the
                // scoping marker carries no naming information.
                self.parse_block()
            }
            Tok::Op(";") => {
                self.bump();
                Ok(vec![self.ast.non_terminal(vocab::pass_stmt(), vec![])])
            }
            Tok::Name(n) => match n.as_str() {
                "if" => self.parse_if().map(|n| vec![n]),
                "while" => self.parse_while().map(|n| vec![n]),
                "do" => self.parse_do_while().map(|n| vec![n]),
                "for" => self.parse_for().map(|n| vec![n]),
                "try" => self.parse_try().map(|n| vec![n]),
                "switch" => self.parse_switch().map(|n| vec![n]),
                "synchronized" => {
                    self.bump();
                    self.expect_op("(")?;
                    let e = self.parse_expr()?;
                    self.expect_op(")")?;
                    let body = self.parse_block()?;
                    let b = self.ast.non_terminal("Body", body);
                    let node = self
                        .ast
                        .non_terminal(vocab::synchronized_stmt(), vec![e, b]);
                    self.ast.set_line(node, line);
                    Ok(vec![node])
                }
                "return" => {
                    self.bump();
                    let mut kids = Vec::new();
                    if !matches!(self.peek(), Tok::Op(";")) {
                        kids.push(self.parse_expr()?);
                    }
                    self.expect_op(";")?;
                    let node = self.ast.non_terminal(vocab::return_stmt(), kids);
                    self.ast.set_line(node, line);
                    Ok(vec![node])
                }
                "throw" => {
                    self.bump();
                    let e = self.parse_expr()?;
                    self.expect_op(";")?;
                    let node = self.ast.non_terminal(vocab::throw_stmt(), vec![e]);
                    self.ast.set_line(node, line);
                    Ok(vec![node])
                }
                "break" | "continue" => {
                    self.bump();
                    // Optional label.
                    if matches!(self.peek(), Tok::Name(l) if !KEYWORDS.contains(&l.as_str())) {
                        self.bump();
                    }
                    self.expect_op(";")?;
                    let kind = if n == "break" {
                        vocab::break_stmt()
                    } else {
                        vocab::continue_stmt()
                    };
                    Ok(vec![self.ast.non_terminal(kind, vec![])])
                }
                "assert" => {
                    self.bump();
                    let mut kids = vec![self.parse_expr()?];
                    if self.eat_op(":") {
                        kids.push(self.parse_expr()?);
                    }
                    self.expect_op(";")?;
                    let node = self.ast.non_terminal(vocab::assert_stmt(), kids);
                    self.ast.set_line(node, line);
                    Ok(vec![node])
                }
                "final" => {
                    self.bump();
                    self.parse_local_var_or_expr()
                }
                "class" => Ok(vec![self.parse_class_like()?]),
                _ => self.parse_local_var_or_expr(),
            },
            _ => self.parse_local_var_or_expr(),
        }
    }

    /// Disambiguates `Type name = …;` from an expression statement by
    /// backtracking.
    fn parse_local_var_or_expr(&mut self) -> Result<Vec<NodeId>, ParseError> {
        let save = self.pos;
        let ast_len = self.ast.len();
        if let Ok(decl) = self.try_parse_local_var() {
            return Ok(decl);
        }
        self.pos = save;
        debug_assert!(self.ast.len() >= ast_len);
        let line = self.line();
        let e = self.parse_expr()?;
        self.expect_op(";")?;
        let node = if self.is_assign_like(e) {
            e
        } else {
            let s = self.ast.non_terminal(vocab::expr_stmt(), vec![e]);
            s
        };
        self.ast.set_line(node, line);
        Ok(vec![node])
    }

    fn is_assign_like(&self, node: NodeId) -> bool {
        let v = self.ast.value(node);
        v == vocab::assign() || v == vocab::aug_assign()
    }

    fn try_parse_local_var(&mut self) -> Result<Vec<NodeId>, ParseError> {
        let line = self.line();
        let ty = self.parse_type()?;
        // Must be followed by a plain name and then `=`, `;`, `,`, or `[`.
        if !matches!(self.peek(), Tok::Name(n) if !KEYWORDS.contains(&n.as_str())) {
            return Err(self.unexpected("not a declaration"));
        }
        if !matches!(
            self.peek_at(1),
            Tok::Op("=") | Tok::Op(";") | Tok::Op(",") | Tok::Op("[")
        ) {
            return Err(self.unexpected("not a declaration"));
        }
        let mut out = Vec::new();
        loop {
            let (name, nline) = self.expect_name()?;
            while matches!(self.peek(), Tok::Op("[")) && matches!(self.peek_at(1), Tok::Op("]")) {
                self.bump();
                self.bump();
            }
            let name_node = self.name_node(vocab::name_store(), &name, NameRole::Object, nline);
            let mut kids = vec![ty, name_node];
            if self.eat_op("=") {
                kids.push(self.parse_expr()?);
            }
            let node = self.ast.non_terminal(vocab::local_var(), kids);
            self.ast.set_line(node, line);
            out.push(node);
            if self.eat_op(",") {
                continue;
            }
            self.expect_op(";")?;
            break;
        }
        Ok(out)
    }

    fn parse_if(&mut self) -> Result<NodeId, ParseError> {
        let line = self.line();
        self.expect_kw("if")?;
        self.expect_op("(")?;
        let cond = self.parse_expr()?;
        self.expect_op(")")?;
        let then = self.parse_statement()?;
        let body = self.ast.non_terminal("Body", then);
        let mut kids = vec![cond, body];
        if self.eat_kw("else") {
            let els = self.parse_statement()?;
            kids.push(self.ast.non_terminal("OrElse", els));
        }
        let node = self.ast.non_terminal(vocab::if_stmt(), kids);
        self.ast.set_line(node, line);
        Ok(node)
    }

    fn parse_while(&mut self) -> Result<NodeId, ParseError> {
        let line = self.line();
        self.expect_kw("while")?;
        self.expect_op("(")?;
        let cond = self.parse_expr()?;
        self.expect_op(")")?;
        let body = self.parse_statement()?;
        let b = self.ast.non_terminal("Body", body);
        let node = self.ast.non_terminal(vocab::while_stmt(), vec![cond, b]);
        self.ast.set_line(node, line);
        Ok(node)
    }

    fn parse_do_while(&mut self) -> Result<NodeId, ParseError> {
        let line = self.line();
        self.expect_kw("do")?;
        let body = self.parse_statement()?;
        self.expect_kw("while")?;
        self.expect_op("(")?;
        let cond = self.parse_expr()?;
        self.expect_op(")")?;
        self.expect_op(";")?;
        let b = self.ast.non_terminal("Body", body);
        let node = self.ast.non_terminal("DoWhile", vec![cond, b]);
        self.ast.set_line(node, line);
        Ok(node)
    }

    fn parse_for(&mut self) -> Result<NodeId, ParseError> {
        let line = self.line();
        self.expect_kw("for")?;
        self.expect_op("(")?;
        // Enhanced for: `for (Type x : xs)`.
        let save = self.pos;
        if let Ok(node) = self.try_parse_enhanced_for(line) {
            return Ok(node);
        }
        self.pos = save;
        // Classic for.
        let init: Vec<NodeId> = if self.eat_op(";") {
            vec![]
        } else {
            let save2 = self.pos;
            match self.try_parse_local_var() {
                Ok(decls) => decls,
                Err(_) => {
                    self.pos = save2;
                    let mut exprs = vec![self.parse_expr()?];
                    while self.eat_op(",") {
                        exprs.push(self.parse_expr()?);
                    }
                    self.expect_op(";")?;
                    exprs
                }
            }
        };
        let init_node = self.ast.non_terminal("Init", init);
        let cond = if matches!(self.peek(), Tok::Op(";")) {
            self.ast.non_terminal("Cond", vec![])
        } else {
            let c = self.parse_expr()?;
            self.ast.non_terminal("Cond", vec![c])
        };
        self.expect_op(";")?;
        let update = if matches!(self.peek(), Tok::Op(")")) {
            self.ast.non_terminal("Update", vec![])
        } else {
            let mut us = vec![self.parse_expr()?];
            while self.eat_op(",") {
                us.push(self.parse_expr()?);
            }
            self.ast.non_terminal("Update", us)
        };
        self.expect_op(")")?;
        let body = self.parse_statement()?;
        let b = self.ast.non_terminal("Body", body);
        let node = self
            .ast
            .non_terminal(vocab::for_classic(), vec![init_node, cond, update, b]);
        self.ast.set_line(node, line);
        Ok(node)
    }

    fn try_parse_enhanced_for(&mut self, line: u32) -> Result<NodeId, ParseError> {
        self.eat_kw("final");
        let ty = self.parse_type()?;
        let (name, nline) = self.expect_name()?;
        if !self.eat_op(":") {
            return Err(self.unexpected("not an enhanced for"));
        }
        let target = self.name_node(vocab::name_store(), &name, NameRole::Object, nline);
        let iter = self.parse_expr()?;
        self.expect_op(")")?;
        let body = self.parse_statement()?;
        let b = self.ast.non_terminal("Body", body);
        let node = self
            .ast
            .non_terminal(vocab::for_stmt(), vec![ty, target, iter, b]);
        self.ast.set_line(node, line);
        Ok(node)
    }

    fn parse_try(&mut self) -> Result<NodeId, ParseError> {
        let line = self.line();
        self.expect_kw("try")?;
        let mut kids = Vec::new();
        // try-with-resources.
        if self.eat_op("(") {
            loop {
                let save = self.pos;
                match self.try_parse_resource() {
                    Ok(r) => kids.push(r),
                    Err(_) => {
                        self.pos = save;
                        kids.push(self.parse_expr()?);
                    }
                }
                if !self.eat_op(";") || matches!(self.peek(), Tok::Op(")")) {
                    break;
                }
            }
            self.expect_op(")")?;
        }
        let body = self.parse_block()?;
        kids.push(self.ast.non_terminal("Body", body));
        while self.at_kw("catch") {
            self.bump();
            let hline = self.line();
            self.expect_op("(")?;
            self.skip_modifiers()?;
            let mut hkids = vec![self.parse_type()?];
            // Multi-catch: `catch (A | B e)`.
            while self.eat_op("|") {
                hkids.push(self.parse_type()?);
            }
            let (name, nline) = self.expect_name()?;
            hkids.push(self.name_node(vocab::name_store(), &name, NameRole::Object, nline));
            self.expect_op(")")?;
            let hbody = self.parse_block()?;
            hkids.push(self.ast.non_terminal("Body", hbody));
            let h = self.ast.non_terminal(vocab::handler(), hkids);
            self.ast.set_line(h, hline);
            kids.push(h);
        }
        if self.eat_kw("finally") {
            let fbody = self.parse_block()?;
            kids.push(self.ast.non_terminal("Finally", fbody));
        }
        let node = self.ast.non_terminal(vocab::try_stmt(), kids);
        self.ast.set_line(node, line);
        Ok(node)
    }

    fn try_parse_resource(&mut self) -> Result<NodeId, ParseError> {
        let line = self.line();
        self.eat_kw("final");
        let ty = self.parse_type()?;
        let (name, nline) = self.expect_name()?;
        self.expect_op("=")?;
        let value = self.parse_expr()?;
        let target = self.name_node(vocab::name_store(), &name, NameRole::Object, nline);
        let node = self.ast.non_terminal(vocab::local_var(), vec![ty, target, value]);
        self.ast.set_line(node, line);
        Ok(node)
    }

    fn parse_switch(&mut self) -> Result<NodeId, ParseError> {
        let line = self.line();
        self.expect_kw("switch")?;
        self.expect_op("(")?;
        let scrutinee = self.parse_expr()?;
        self.expect_op(")")?;
        self.expect_op("{")?;
        let mut kids = vec![scrutinee];
        let mut current_case: Vec<NodeId> = Vec::new();
        let mut has_case = false;
        while !self.eat_op("}") {
            if matches!(self.peek(), Tok::Eof) {
                return Err(self.unexpected("unterminated switch"));
            }
            if self.at_kw("case") || self.at_kw("default") {
                if has_case {
                    kids.push(self.ast.non_terminal("Case", std::mem::take(&mut current_case)));
                }
                has_case = true;
                if self.eat_kw("case") {
                    current_case.push(self.parse_expr()?);
                } else {
                    self.expect_kw("default")?;
                }
                self.expect_op(":")?;
            } else {
                current_case.extend(self.parse_statement()?);
            }
        }
        if has_case {
            kids.push(self.ast.non_terminal("Case", current_case));
        }
        let node = self.ast.non_terminal(vocab::switch_stmt(), kids);
        self.ast.set_line(node, line);
        Ok(node)
    }

    // ----- expressions -----------------------------------------------------------

    fn parse_expr(&mut self) -> Result<NodeId, ParseError> {
        self.parse_assignment()
    }

    fn parse_assignment(&mut self) -> Result<NodeId, ParseError> {
        let left = self.parse_ternary()?;
        if self.eat_op("=") {
            let target = self.to_store(left);
            let value = self.parse_assignment()?;
            return Ok(self.ast.non_terminal(vocab::assign(), vec![target, value]));
        }
        for op in [
            "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=", ">>>=",
        ] {
            if matches!(self.peek(), Tok::Op(o) if *o == op) {
                self.bump();
                let target = self.to_store(left);
                let op_node = self.op_term(op);
                let value = self.parse_assignment()?;
                return Ok(self
                    .ast
                    .non_terminal(vocab::aug_assign(), vec![target, op_node, value]));
            }
        }
        Ok(left)
    }

    fn to_store(&mut self, node: NodeId) -> NodeId {
        let v = self.ast.value(node);
        if v == vocab::name_load() {
            let kids = self.ast.children(node).to_vec();
            let line = self.ast.line(node);
            let new = self.ast.non_terminal(vocab::name_store(), kids);
            self.ast.set_line(new, line);
            new
        } else if v == vocab::attribute_load() {
            let kids = self.ast.children(node).to_vec();
            let line = self.ast.line(node);
            let new = self.ast.non_terminal(vocab::attribute_store(), kids);
            self.ast.set_line(new, line);
            new
        } else {
            node
        }
    }

    fn parse_ternary(&mut self) -> Result<NodeId, ParseError> {
        let cond = self.parse_or()?;
        if self.eat_op("?") {
            let then = self.parse_expr()?;
            self.expect_op(":")?;
            let els = self.parse_expr()?;
            return Ok(self
                .ast
                .non_terminal(vocab::ternary(), vec![cond, then, els]));
        }
        Ok(cond)
    }

    fn parse_or(&mut self) -> Result<NodeId, ParseError> {
        let mut left = self.parse_and()?;
        while self.eat_op("||") {
            let op = self.op_term("||");
            let right = self.parse_and()?;
            left = self.ast.non_terminal(vocab::bool_op(), vec![left, op, right]);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<NodeId, ParseError> {
        let mut left = self.parse_binary_level(0)?;
        while self.eat_op("&&") {
            let op = self.op_term("&&");
            let right = self.parse_binary_level(0)?;
            left = self.ast.non_terminal(vocab::bool_op(), vec![left, op, right]);
        }
        Ok(left)
    }

    fn parse_binary_level(&mut self, level: usize) -> Result<NodeId, ParseError> {
        const LEVELS: &[&[&str]] = &[
            &["|"],
            &["^"],
            &["&"],
            &["==", "!="],
            &["<", ">", "<=", ">="],
            &["<<", ">>", ">>>"],
            &["+", "-"],
            &["*", "/", "%"],
        ];
        if level >= LEVELS.len() {
            return self.parse_unary();
        }
        let mut left = self.parse_binary_level(level + 1)?;
        loop {
            // `instanceof` sits at relational precedence.
            if level == 4 && self.at_kw("instanceof") {
                self.bump();
                let ty = self.parse_type()?;
                left = self.ast.non_terminal(vocab::instance_of(), vec![left, ty]);
                continue;
            }
            let matched = match self.peek() {
                Tok::Op(o) => LEVELS[level].iter().find(|&&c| c == *o).copied(),
                _ => None,
            };
            let Some(op) = matched else { break };
            self.bump();
            let op_node = self.op_term(op);
            let right = self.parse_binary_level(level + 1)?;
            let kind = if matches!(op, "==" | "!=" | "<" | ">" | "<=" | ">=") {
                vocab::compare()
            } else {
                vocab::bin_op()
            };
            left = self.ast.non_terminal(kind, vec![left, op_node, right]);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<NodeId, ParseError> {
        for op in ["!", "-", "+", "~", "++", "--"] {
            if matches!(self.peek(), Tok::Op(o) if *o == op) {
                self.bump();
                let op_node = self.op_term(op);
                let operand = self.parse_unary()?;
                return Ok(self
                    .ast
                    .non_terminal(vocab::unary_op(), vec![op_node, operand]));
            }
        }
        // Cast: `(Type) expr` — backtrack if it does not parse as a cast.
        if matches!(self.peek(), Tok::Op("(")) {
            let save = self.pos;
            if let Ok(node) = self.try_parse_cast() {
                return Ok(node);
            }
            self.pos = save;
        }
        self.parse_postfix()
    }

    fn try_parse_cast(&mut self) -> Result<NodeId, ParseError> {
        self.expect_op("(")?;
        let ty = self.parse_type()?;
        self.expect_op(")")?;
        // A cast must be followed by something that can start a unary
        // expression; reject `(x) + y` where x is a variable.
        let ty_name = {
            let term = self.ast.children(ty)[0];
            self.ast.value(term)
        };
        let is_primitive = PRIMITIVES.contains(&ty_name.as_str());
        let ok = match self.peek() {
            Tok::Name(n) => !KEYWORDS.contains(&n.as_str()) || n == "this" || n == "new",
            Tok::Str(_) | Tok::Char(_) => true,
            Tok::Number(_) => is_primitive,
            Tok::Op("(") => true,
            Tok::Op("!") | Tok::Op("~") => true,
            _ => false,
        };
        if !ok {
            return Err(self.unexpected("not a cast"));
        }
        let operand = self.parse_unary()?;
        Ok(self.ast.non_terminal(vocab::cast(), vec![ty, operand]))
    }

    fn parse_postfix(&mut self) -> Result<NodeId, ParseError> {
        let mut node = self.parse_atom()?;
        loop {
            if matches!(self.peek(), Tok::Op("."))
                && matches!(self.peek_at(1), Tok::Name(n) if !KEYWORDS.contains(&n.as_str()))
            {
                self.bump();
                let (name, nline) = self.expect_name()?;
                let attr = self.name_node(vocab::attr(), &name, NameRole::Object, nline);
                node = self
                    .ast
                    .non_terminal(vocab::attribute_load(), vec![node, attr]);
                self.ast.set_line(node, nline);
            } else if matches!(self.peek(), Tok::Op(".")) && matches!(self.peek_at(1), Tok::Name(n) if n == "class" || n == "this" || n == "new")
            {
                self.bump();
                let (kw, nline) = match self.bump() {
                    Tok::Name(n) => (n, self.line()),
                    _ => unreachable!("peeked a name"),
                };
                let attr = self.name_node(vocab::attr(), &kw, NameRole::Object, nline);
                node = self
                    .ast
                    .non_terminal(vocab::attribute_load(), vec![node, attr]);
            } else if matches!(self.peek(), Tok::Op("(")) {
                node = self.parse_call(node)?;
            } else if self.eat_op("[") {
                let idx = self.parse_expr()?;
                self.expect_op("]")?;
                node = self.ast.non_terminal(vocab::subscript(), vec![node, idx]);
            } else if matches!(self.peek(), Tok::Op("++") | Tok::Op("--")) {
                let op = match self.bump() {
                    Tok::Op(o) => o,
                    _ => unreachable!("peeked an op"),
                };
                let op_node = self.op_term(op);
                node = self.ast.non_terminal(vocab::unary_op(), vec![node, op_node]);
            } else if matches!(self.peek(), Tok::Op("::")) {
                self.bump();
                let (name, nline) = match self.bump() {
                    Tok::Name(n) => (n, self.line()),
                    other => {
                        return Err(ParseError::new(
                            self.line(),
                            format!("expected method reference name, got {other:?}"),
                        ))
                    }
                };
                let attr = self.name_node(vocab::attr(), &name, NameRole::Function, nline);
                node = self.ast.non_terminal("MethodRef", vec![node, attr]);
            } else {
                break;
            }
        }
        Ok(node)
    }

    fn parse_call(&mut self, callee: NodeId) -> Result<NodeId, ParseError> {
        let line = self.line();
        self.expect_op("(")?;
        self.mark_callee(callee);
        let mut kids = vec![callee];
        while !matches!(self.peek(), Tok::Op(")")) {
            kids.push(self.parse_expr()?);
            if !self.eat_op(",") {
                break;
            }
        }
        self.expect_op(")")?;
        let call = self.ast.non_terminal(vocab::call(), kids);
        self.ast.set_line(call, line);
        Ok(call)
    }

    fn mark_callee(&mut self, callee: NodeId) {
        let v = self.ast.value(callee);
        if v == vocab::attribute_load() {
            if let Some(&attr) = self.ast.children(callee).get(1) {
                if let Some(&term) = self.ast.children(attr).first() {
                    self.ast.set_role(term, NameRole::Function);
                }
            }
        } else if v == vocab::name_load() {
            if let Some(&term) = self.ast.children(callee).first() {
                self.ast.set_role(term, NameRole::Function);
            }
        }
    }

    fn parse_atom(&mut self) -> Result<NodeId, ParseError> {
        let line = self.line();
        let node = match self.peek().clone() {
            Tok::Number(n) => {
                self.bump();
                let term = self.ast.terminal(&*n, TermKind::Num);
                self.ast.set_line(term, line);
                self.ast.non_terminal(vocab::num(), vec![term])
            }
            Tok::Str(s) => {
                self.bump();
                let term = self.ast.terminal(&*s, TermKind::Str);
                self.ast.set_line(term, line);
                self.ast.non_terminal(vocab::str_lit(), vec![term])
            }
            Tok::Char(c) => {
                self.bump();
                let term = self.ast.terminal(&*c, TermKind::Str);
                self.ast.non_terminal(vocab::str_lit(), vec![term])
            }
            Tok::Name(n) => match n.as_str() {
                "true" | "false" => {
                    self.bump();
                    let term = self.ast.terminal(&*n, TermKind::Bool);
                    self.ast.non_terminal(vocab::bool_lit(), vec![term])
                }
                "null" => {
                    self.bump();
                    let term = self.ast.terminal("null", TermKind::Null);
                    self.ast.non_terminal(vocab::none_lit(), vec![term])
                }
                "this" | "super" => {
                    self.bump();
                    let term = self.ast.terminal(&*n, TermKind::Ident);
                    self.ast.set_role(term, NameRole::Object);
                    self.ast.set_line(term, line);
                    self.ast.non_terminal(vocab::name_load(), vec![term])
                }
                "new" => {
                    self.bump();
                    let ty = self.parse_type()?;
                    if matches!(self.peek(), Tok::Op("{")) {
                        // `new int[] {…}`: the type parse swallowed the empty
                        // dims; only the initializer remains.
                        let init = self.parse_array_initializer()?;
                        self.ast.non_terminal(vocab::new_array(), vec![ty, init])
                    } else if self.eat_op("[") {
                        // Array creation.
                        let mut kids = vec![ty];
                        if !matches!(self.peek(), Tok::Op("]")) {
                            kids.push(self.parse_expr()?);
                        }
                        self.expect_op("]")?;
                        while matches!(self.peek(), Tok::Op("["))
                        {
                            self.bump();
                            if !matches!(self.peek(), Tok::Op("]")) {
                                kids.push(self.parse_expr()?);
                            }
                            self.expect_op("]")?;
                        }
                        if matches!(self.peek(), Tok::Op("{")) {
                            kids.push(self.parse_array_initializer()?);
                        }
                        self.ast.non_terminal(vocab::new_array(), kids)
                    } else {
                        self.expect_op("(")?;
                        let mut kids = vec![ty];
                        while !matches!(self.peek(), Tok::Op(")")) {
                            kids.push(self.parse_expr()?);
                            if !self.eat_op(",") {
                                break;
                            }
                        }
                        self.expect_op(")")?;
                        // Anonymous class body.
                        if matches!(self.peek(), Tok::Op("{")) {
                            self.bump();
                            let mut depth = 1;
                            while depth > 0 {
                                match self.bump() {
                                    Tok::Op("{") => depth += 1,
                                    Tok::Op("}") => depth -= 1,
                                    Tok::Eof => {
                                        return Err(
                                            self.unexpected("unterminated anonymous class")
                                        )
                                    }
                                    _ => {}
                                }
                            }
                        }
                        self.ast.non_terminal(vocab::new_object(), kids)
                    }
                }
                _ if PRIMITIVES.contains(&n.as_str()) => {
                    // `int.class`-style references; rare — treat as name.
                    self.bump();
                    let term = self.ast.terminal(&*n, TermKind::Ident);
                    self.ast.set_role(term, NameRole::Type);
                    self.ast.non_terminal(vocab::name_load(), vec![term])
                }
                _ if KEYWORDS.contains(&n.as_str()) => {
                    return Err(self.unexpected("unexpected keyword in expression"));
                }
                _ => {
                    self.bump();
                    // Lambda: `x -> expr`.
                    if matches!(self.peek(), Tok::Op("->")) {
                        self.bump();
                        let pnode = self.name_node(vocab::name_param(), &n, NameRole::Object, line);
                        let param = self.ast.non_terminal(vocab::param(), vec![pnode]);
                        let params = self.ast.non_terminal(vocab::params(), vec![param]);
                        let body = if matches!(self.peek(), Tok::Op("{")) {
                            let b = self.parse_block()?;
                            self.ast.non_terminal("Body", b)
                        } else {
                            self.parse_expr()?
                        };
                        self.ast.non_terminal(vocab::lambda(), vec![params, body])
                    } else {
                        let term = self.ast.terminal(&*n, TermKind::Ident);
                        self.ast.set_role(term, NameRole::Object);
                        self.ast.set_line(term, line);
                        let node = self.ast.non_terminal(vocab::name_load(), vec![term]);
                        self.ast.set_line(node, line);
                        node
                    }
                }
            },
            Tok::Op("(") => {
                self.bump();
                // Possibly a lambda parameter list: `(a, b) -> …`.
                let save = self.pos;
                if let Ok(l) = self.try_parse_lambda_params() {
                    return Ok(l);
                }
                self.pos = save;
                let inner = self.parse_expr()?;
                self.expect_op(")")?;
                inner
            }
            Tok::Op("{") => self.parse_array_initializer()?,
            _ => return Err(self.unexpected("expected expression")),
        };
        self.ast.set_line(node, line);
        Ok(node)
    }

    fn try_parse_lambda_params(&mut self) -> Result<NodeId, ParseError> {
        let mut params = Vec::new();
        while !matches!(self.peek(), Tok::Op(")")) {
            // Optionally typed lambda parameter.
            let save = self.pos;
            let ty = self.parse_type().ok();
            if ty.is_some() && !matches!(self.peek(), Tok::Name(n) if !KEYWORDS.contains(&n.as_str()))
            {
                self.pos = save;
            }
            let (name, nline) = self.expect_name()?;
            let pnode = self.name_node(vocab::name_param(), &name, NameRole::Object, nline);
            params.push(self.ast.non_terminal(vocab::param(), vec![pnode]));
            if !self.eat_op(",") {
                break;
            }
        }
        self.expect_op(")")?;
        if !self.eat_op("->") {
            return Err(self.unexpected("not a lambda"));
        }
        let params_node = self.ast.non_terminal(vocab::params(), params);
        let body = if matches!(self.peek(), Tok::Op("{")) {
            let b = self.parse_block()?;
            self.ast.non_terminal("Body", b)
        } else {
            self.parse_expr()?
        };
        Ok(self.ast.non_terminal(vocab::lambda(), vec![params_node, body]))
    }

    fn parse_array_initializer(&mut self) -> Result<NodeId, ParseError> {
        self.expect_op("{")?;
        let mut items = Vec::new();
        while !matches!(self.peek(), Tok::Op("}")) {
            items.push(self.parse_expr()?);
            if !self.eat_op(",") {
                break;
            }
        }
        self.expect_op("}")?;
        Ok(self.ast.non_terminal(vocab::list_lit(), items))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sexp(src: &str) -> String {
        let ast = parse(src).unwrap_or_else(|e| panic!("parse failed for {src:?}: {e}"));
        ast.to_sexp(ast.root())
    }

    fn in_class(body: &str) -> String {
        sexp(&format!("class A {{ void f() {{ {body} }} }}"))
    }

    #[test]
    fn class_with_extends() {
        let s = sexp("class Child extends Base implements Runnable { }");
        assert!(s.contains("(ClassDef (NameStore Child) (Bases (TypeRef Base) (TypeRef Runnable)))"), "{s}");
    }

    #[test]
    fn field_with_initializer() {
        let s = sexp("class A { private int count = 0; }");
        assert!(s.contains("(FieldDecl (TypeRef int) (NameStore count) (Num 0))"), "{s}");
    }

    #[test]
    fn method_call_shape_matches_python() {
        let s = in_class("this.publicKey = publickKey;");
        assert!(s.contains("(Assign (AttributeStore (NameLoad this) (Attr publicKey)) (NameLoad publickKey))"), "{s}");
    }

    #[test]
    fn paper_table6_example1() {
        let s = in_class("e.getStackTrace();");
        assert!(s.contains("(ExprStmt (Call (AttributeLoad (NameLoad e) (Attr getStackTrace))))"), "{s}");
    }

    #[test]
    fn paper_table6_example2_classic_for() {
        let s = in_class("for (double i = 1; i < chainlength; i++) { }");
        assert!(s.contains("(ForClassic (Init (LocalVar (TypeRef double) (NameStore i) (Num 1)))"), "{s}");
        assert!(s.contains("(Cond (Compare (NameLoad i) < (NameLoad chainlength)))"), "{s}");
    }

    #[test]
    fn paper_table6_example3_catch() {
        let s = in_class("try { run(); } catch (Throwable e) { }");
        assert!(s.contains("(Handler (TypeRef Throwable) (NameStore e) (Body))"), "{s}");
    }

    #[test]
    fn enhanced_for() {
        let s = in_class("for (String name : names) { use(name); }");
        assert!(s.contains("(For (TypeRef String) (NameStore name) (NameLoad names)"), "{s}");
    }

    #[test]
    fn new_object() {
        let s = in_class("ConektaObject resource = new ConektaObject();");
        assert!(s.contains("(LocalVar (TypeRef ConektaObject) (NameStore resource) (New (TypeRef ConektaObject)))"), "{s}");
    }

    #[test]
    fn generics_in_declarations() {
        let s = in_class("Map<String, List<Integer>> m = new HashMap<>();");
        assert!(s.contains("(LocalVar (TypeRef Map (TypeRef String) (TypeRef List (TypeRef Integer)))"), "{s}");
    }

    #[test]
    fn cast_expression() {
        let s = in_class("int x = (int) value;");
        assert!(s.contains("(Cast (TypeRef int) (NameLoad value))"), "{s}");
    }

    #[test]
    fn parenthesised_expression_is_not_a_cast() {
        let s = in_class("int x = (a) + b;");
        assert!(s.contains("(BinOp (NameLoad a) + (NameLoad b))"), "{s}");
    }

    #[test]
    fn instanceof_expression() {
        let s = in_class("boolean b = o instanceof String;");
        assert!(s.contains("(InstanceOf (NameLoad o) (TypeRef String))"), "{s}");
    }

    #[test]
    fn constructor_declaration() {
        let s = sexp("class A { A(int x) { this.x = x; } }");
        assert!(s.contains("(CtorDecl (NameStore A) (Params (Param (TypeRef int) (NameParam x)))"), "{s}");
    }

    #[test]
    fn interface_methods_without_bodies() {
        let s = sexp("interface I { void run(); int size(); }");
        assert!(s.contains("(MethodDecl (TypeRef void) (NameStore run) (Params))"), "{s}");
    }

    #[test]
    fn static_method_call() {
        let s = in_class("Math.max(a, b);");
        assert!(s.contains("(Call (AttributeLoad (NameLoad Math) (Attr max)) (NameLoad a) (NameLoad b))"), "{s}");
    }

    #[test]
    fn ternary_and_boolean_ops() {
        let s = in_class("int x = a > 0 && b ? 1 : 0;");
        assert!(s.contains("Ternary"), "{s}");
        assert!(s.contains("BoolOp"), "{s}");
    }

    #[test]
    fn postfix_increment() {
        let s = in_class("i++;");
        assert!(s.contains("(UnaryOp (NameLoad i) ++)"), "{s}");
    }

    #[test]
    fn array_creation_and_access() {
        let s = in_class("int[] xs = new int[10]; int y = xs[0];");
        assert!(s.contains("(NewArray (TypeRef int) (Num 10))"), "{s}");
        assert!(s.contains("(Subscript (NameLoad xs) (Num 0))"), "{s}");
    }

    #[test]
    fn switch_statement() {
        let s = in_class("switch (x) { case 1: a(); break; default: b(); }");
        assert!(s.contains("Switch"), "{s}");
        assert!(s.contains("(Case (Num 1)"), "{s}");
    }

    #[test]
    fn lambda_and_method_reference() {
        let s = in_class("list.forEach(x -> use(x)); list.forEach(System.out::println);");
        assert!(s.contains("(Lambda (Params (Param (NameParam x)))"), "{s}");
        assert!(s.contains("MethodRef"), "{s}");
    }

    #[test]
    fn annotations_are_skipped() {
        let s = sexp("@SuppressWarnings(\"all\")\nclass A { @Override void f() { } }");
        assert!(s.contains("(MethodDecl (TypeRef void) (NameStore f)"), "{s}");
    }

    #[test]
    fn package_and_imports() {
        let s = sexp("package com.acme;\nimport java.util.List;\nclass A { }");
        assert!(s.contains("(Package"), "{s}");
        assert!(s.contains("(Import"), "{s}");
    }

    #[test]
    fn multi_declarator_fields() {
        let s = sexp("class A { int a, b = 2; }");
        assert!(s.contains("(FieldDecl (TypeRef int) (NameStore a))"), "{s}");
        assert!(s.contains("(FieldDecl (TypeRef int) (NameStore b) (Num 2))"), "{s}");
    }

    #[test]
    fn try_with_resources() {
        let s = in_class("try (Reader r = open()) { r.read(); }");
        assert!(s.contains("(LocalVar (TypeRef Reader) (NameStore r) (Call (NameLoad open)))"), "{s}");
    }

    #[test]
    fn enum_constants() {
        let s = sexp("enum Color { RED, GREEN, BLUE }");
        assert!(s.contains("(NameStore RED)"), "{s}");
    }

    #[test]
    fn parse_error_reported() {
        assert!(parse("class A { void f( { } }").is_err());
    }

    #[test]
    fn android_intent_example() {
        let s = in_class("context.startActivity(i);");
        assert!(s.contains("(Call (AttributeLoad (NameLoad context) (Attr startActivity)) (NameLoad i))"), "{s}");
    }
}
