//! JavaScript / TypeScript lexer.
//!
//! Mirrors the Java lexer's shape, with the JS-specific additions that
//! matter for naming analysis: template literals (lexed as one string
//! token, interpolations included verbatim), regex literals (disambiguated
//! from division by the previous significant token), and the `=>`, `===`,
//! `?.`, `??` operator family.

use crate::source::ParseError;

/// One JavaScript token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Name(String),
    /// Numeric literal (spelling preserved, `n` bigint suffix included).
    Number(String),
    /// String literal (contents; quotes stripped).
    Str(String),
    /// Template literal (raw contents between the backticks).
    Template(String),
    /// Regex literal (full spelling including slashes and flags).
    Regex(String),
    /// Operator or punctuation.
    Op(&'static str),
    /// End of input.
    Eof,
}

/// A token with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based line number.
    pub line: u32,
}

const OPERATORS: &[&str] = &[
    ">>>=", "===", "!==", "**=", "...", "<<=", ">>=", ">>>", "&&=", "||=", "??=", "==", "!=",
    "<=", ">=", "&&", "||", "??", "?.", "=>", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=",
    "|=", "^=", "**", "<<", ">>", "(", ")", "[", "]", "{", "}", ";", ",", ".", "=", "+", "-",
    "*", "/", "%", "&", "|", "^", "!", "~", "<", ">", "?", ":", "@",
];

/// Keywords after which a `/` starts a regex literal, not division.
const REGEX_PREFIX_KEYWORDS: &[&str] = &[
    "return", "typeof", "instanceof", "in", "of", "new", "delete", "void", "throw", "case", "do",
    "else", "yield", "await",
];

/// Does a `/` at this point start a regex literal? True at the beginning of
/// an expression: after an operator/punctuation (except the postfix-ending
/// `)`, `]`, `++`, `--`) or after an expression-introducing keyword.
fn regex_allowed(prev: Option<&Tok>) -> bool {
    match prev {
        None => true,
        Some(Tok::Op(o)) => !matches!(*o, ")" | "]" | "++" | "--"),
        Some(Tok::Name(n)) => REGEX_PREFIX_KEYWORDS.contains(&n.as_str()),
        Some(_) => false,
    }
}

/// Tokenises JavaScript / TypeScript source.
///
/// # Errors
///
/// Returns [`ParseError`] on unterminated strings/templates/comments/regexes
/// or unexpected characters.
pub fn lex(src: &str) -> Result<Vec<Spanned>, ParseError> {
    let chars: Vec<char> = src.chars().collect();
    let mut out: Vec<Spanned> = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                let start_line = line;
                i += 2;
                loop {
                    if i + 1 >= chars.len() {
                        return Err(ParseError::new(start_line, "unterminated block comment"));
                    }
                    if chars[i] == '*' && chars[i + 1] == '/' {
                        i += 2;
                        break;
                    }
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            '/' if regex_allowed(out.last().map(|s| &s.tok)) => {
                let start_line = line;
                let start = i;
                i += 1;
                let mut in_class = false;
                loop {
                    if i >= chars.len() || chars[i] == '\n' {
                        return Err(ParseError::new(start_line, "unterminated regex literal"));
                    }
                    match chars[i] {
                        '\\' if i + 1 < chars.len() => i += 2,
                        '[' => {
                            in_class = true;
                            i += 1;
                        }
                        ']' => {
                            in_class = false;
                            i += 1;
                        }
                        '/' if !in_class => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                while i < chars.len() && chars[i].is_ascii_alphabetic() {
                    i += 1; // flags
                }
                out.push(Spanned {
                    tok: Tok::Regex(chars[start..i].iter().collect()),
                    line: start_line,
                });
            }
            '"' | '\'' => {
                let quote = c;
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= chars.len() || chars[i] == '\n' {
                        return Err(ParseError::new(line, "unterminated string literal"));
                    }
                    if chars[i] == '\\' && i + 1 < chars.len() {
                        s.push(chars[i]);
                        s.push(chars[i + 1]);
                        i += 2;
                        continue;
                    }
                    if chars[i] == quote {
                        i += 1;
                        break;
                    }
                    s.push(chars[i]);
                    i += 1;
                }
                out.push(Spanned {
                    tok: Tok::Str(s),
                    line,
                });
            }
            '`' => {
                let start_line = line;
                let mut s = String::new();
                i += 1;
                // Interpolations are kept verbatim; `${`…`}` brace depth is
                // tracked so a `}` inside an interpolation's object literal
                // does not end it prematurely.
                let mut depth = 0usize;
                loop {
                    if i >= chars.len() {
                        return Err(ParseError::new(start_line, "unterminated template literal"));
                    }
                    match chars[i] {
                        '\\' if i + 1 < chars.len() => {
                            s.push(chars[i]);
                            s.push(chars[i + 1]);
                            if chars[i + 1] == '\n' {
                                line += 1;
                            }
                            i += 2;
                        }
                        '$' if chars.get(i + 1) == Some(&'{') => {
                            depth += 1;
                            s.push('$');
                            s.push('{');
                            i += 2;
                        }
                        '{' if depth > 0 => {
                            depth += 1;
                            s.push('{');
                            i += 1;
                        }
                        '}' if depth > 0 => {
                            depth -= 1;
                            s.push('}');
                            i += 1;
                        }
                        '`' if depth == 0 => {
                            i += 1;
                            break;
                        }
                        ch => {
                            if ch == '\n' {
                                line += 1;
                            }
                            s.push(ch);
                            i += 1;
                        }
                    }
                }
                out.push(Spanned {
                    tok: Tok::Template(s),
                    line: start_line,
                });
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                let radix_prefix = c == '0'
                    && matches!(
                        chars.get(i + 1),
                        Some('x') | Some('X') | Some('b') | Some('B') | Some('o') | Some('O')
                    );
                if radix_prefix {
                    i += 2;
                }
                while i < chars.len()
                    && (chars[i].is_ascii_alphanumeric() || chars[i] == '_' || chars[i] == '.')
                {
                    if chars[i] == '.' && !chars.get(i + 1).is_some_and(|c| c.is_ascii_digit()) {
                        break;
                    }
                    // Signed exponents: 1e-3
                    if (chars[i] == 'e' || chars[i] == 'E')
                        && !radix_prefix
                        && matches!(chars.get(i + 1), Some('+') | Some('-'))
                    {
                        i += 2;
                        continue;
                    }
                    i += 1;
                }
                out.push(Spanned {
                    tok: Tok::Number(chars[start..i].iter().collect()),
                    line,
                });
            }
            _ if c.is_alphabetic() || c == '_' || c == '$' => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '$')
                {
                    i += 1;
                }
                out.push(Spanned {
                    tok: Tok::Name(chars[start..i].iter().collect()),
                    line,
                });
            }
            _ => {
                let rest: String = chars[i..chars.len().min(i + 4)].iter().collect();
                let op = OPERATORS
                    .iter()
                    .find(|&&op| rest.starts_with(op))
                    .copied()
                    .ok_or_else(|| ParseError::new(line, format!("unexpected character {c:?}")))?;
                out.push(Spanned {
                    tok: Tok::Op(op),
                    line,
                });
                i += op.len();
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn simple_statement() {
        assert_eq!(
            toks("let x = 1;"),
            vec![
                Tok::Name("let".into()),
                Tok::Name("x".into()),
                Tok::Op("="),
                Tok::Number("1".into()),
                Tok::Op(";"),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn both_quote_styles() {
        assert_eq!(toks("s = 'hi';")[2], Tok::Str("hi".into()));
        assert_eq!(toks("s = \"hi\";")[2], Tok::Str("hi".into()));
    }

    #[test]
    fn template_literals_capture_raw_content() {
        assert_eq!(
            toks("s = `a ${x.y} b`;")[2],
            Tok::Template("a ${x.y} b".into())
        );
        // Nested braces inside an interpolation do not end the template.
        assert_eq!(
            toks("s = `v ${ {a: 1}.a } w`;")[2],
            Tok::Template("v ${ {a: 1}.a } w".into())
        );
    }

    #[test]
    fn template_spans_lines() {
        let s = lex("s = `a\nb`;\nlet y;").unwrap();
        let y = s.iter().find(|s| s.tok == Tok::Name("y".into())).unwrap();
        assert_eq!(y.line, 3);
    }

    #[test]
    fn regex_vs_division() {
        assert_eq!(toks("x = /ab+c/g;")[2], Tok::Regex("/ab+c/g".into()));
        assert_eq!(toks("x = a / b;")[3], Tok::Op("/"));
        assert_eq!(toks("return /a[/]b/;")[1], Tok::Regex("/a[/]b/".into()));
    }

    #[test]
    fn js_operator_family() {
        assert_eq!(toks("a === b;")[1], Tok::Op("==="));
        assert_eq!(toks("a !== b;")[1], Tok::Op("!=="));
        assert_eq!(toks("a ?? b;")[1], Tok::Op("??"));
        assert_eq!(toks("a?.b;")[1], Tok::Op("?."));
        assert_eq!(toks("x => x;")[1], Tok::Op("=>"));
        assert_eq!(toks("a ** b;")[1], Tok::Op("**"));
        assert_eq!(toks("f(...xs);")[2], Tok::Op("..."));
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("x = 0xFF;")[2], Tok::Number("0xFF".into()));
        assert_eq!(toks("x = 1.5e-3;")[2], Tok::Number("1.5e-3".into()));
        assert_eq!(toks("x = 10n;")[2], Tok::Number("10n".into()));
        assert_eq!(toks("x = 0b101;")[2], Tok::Number("0b101".into()));
    }

    #[test]
    fn dollar_identifiers() {
        assert_eq!(toks("$el = 1;")[0], Tok::Name("$el".into()));
        assert_eq!(toks("a$b = 1;")[0], Tok::Name("a$b".into()));
    }

    #[test]
    fn comments_skipped() {
        let t = toks("// header\nlet x; /* multi\nline */ let y;");
        assert_eq!(t.iter().filter(|t| matches!(t, Tok::Name(_))).count(), 4);
    }

    #[test]
    fn unterminated_errors() {
        assert!(lex("/* oops").is_err());
        assert!(lex("s = 'oops\n'").is_err());
        assert!(lex("s = `oops").is_err());
        assert!(lex("x = /oops").is_err());
    }

    #[test]
    fn line_numbers() {
        let s = lex("let a;\nlet b;").unwrap();
        let b = s.iter().find(|s| s.tok == Tok::Name("b".into())).unwrap();
        assert_eq!(b.line, 2);
    }
}
