//! JavaScript / TypeScript lexing and parsing.

pub mod lexer;
pub mod parser;

pub use parser::parse;
