//! Recursive-descent parser for a broad JavaScript / TypeScript subset.
//!
//! The parser covers the declaration/statement/expression forms that
//! dominate real GitHub JavaScript: `const`/`let`/`var` declarations,
//! functions and arrow functions, classes with methods/getters/fields,
//! `for`/`for‑of`/`for‑in`, `try`/`catch`, template literals, object and
//! array literals, and ES-module `import`/`export`. TypeScript's common
//! surface (`: Type` annotations, `as` casts, `interface`/`type`/`enum`
//! declarations) is accepted and lowered to the same shapes. Node values
//! reuse the shared [`vocab`] so the pattern miner treats all languages
//! uniformly: `obj.method(x)` becomes `Call`/`AttributeLoad`/`Attr` exactly
//! as in Python and Java, and TS type annotations become `TypeRef` so the
//! origin analysis can use declared types just like Java's.

use super::lexer::{lex, Spanned, Tok};
use crate::ast::{Ast, NameRole, NodeId, TermKind};
use crate::source::ParseError;
use crate::vocab;

/// Strictly reserved words: never valid as plain identifiers.
/// (`let`, `static`, `async`, `of`, `get`, `set`, `as` are contextual and
/// handled at their use sites.)
const KEYWORDS: &[&str] = &[
    "break", "case", "catch", "class", "const", "continue", "debugger", "default", "delete",
    "do", "else", "export", "extends", "finally", "for", "function", "if", "import", "in",
    "instanceof", "new", "return", "super", "switch", "this", "throw", "try", "typeof", "var",
    "void", "while", "with", "yield",
];

/// Parses JavaScript / TypeScript source into a
/// [`Module`](crate::vocab::module)-rooted AST.
///
/// # Errors
///
/// Returns [`ParseError`] for syntax outside the supported subset.
///
/// # Examples
///
/// ```
/// let ast = namer_syntax::js::parse(
///     "class Widget { resize(newSize) { this.size = newSize; } }",
/// )?;
/// assert_eq!(ast.value(ast.root()).as_str(), "Module");
/// # Ok::<(), namer_syntax::ParseError>(())
/// ```
pub fn parse(src: &str) -> Result<Ast, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        ast: Ast::new(),
    };
    let mut kids = Vec::new();
    while !matches!(p.peek(), Tok::Eof) {
        kids.extend(p.parse_statement()?);
    }
    let root = p.ast.non_terminal(vocab::module(), kids);
    p.ast.set_root(root);
    Ok(p.ast)
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    ast: Ast,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek_at(&self, off: usize) -> &Tok {
        let idx = (self.pos + off).min(self.toks.len() - 1);
        &self.toks[idx].tok
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_op(&mut self, op: &str) -> bool {
        if matches!(self.peek(), Tok::Op(o) if *o == op) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_op(&mut self, op: &str) -> Result<(), ParseError> {
        if self.eat_op(op) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("expected {op:?}")))
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Name(n) if n == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("expected keyword {kw:?}")))
        }
    }

    fn at_name(&self) -> bool {
        matches!(self.peek(), Tok::Name(n) if !KEYWORDS.contains(&n.as_str()))
    }

    fn expect_name(&mut self) -> Result<(String, u32), ParseError> {
        let line = self.line();
        match self.bump() {
            Tok::Name(n) if !KEYWORDS.contains(&n.as_str()) => Ok((n, line)),
            other => Err(ParseError::new(line, format!("expected name, got {other:?}"))),
        }
    }

    fn unexpected(&self, what: &str) -> ParseError {
        ParseError::new(self.line(), format!("{what}, got {:?}", self.peek()))
    }

    /// Automatic-semicolon-insertion-lite: a statement terminator is `;`,
    /// or nothing before `}` / EOF / a token on a new line.
    fn eat_semi(&mut self) {
        self.eat_op(";");
    }

    fn name_node(&mut self, wrapper: crate::Sym, name: &str, role: NameRole, line: u32) -> NodeId {
        let term = self.ast.terminal(name, TermKind::Ident);
        self.ast.set_role(term, role);
        self.ast.set_line(term, line);
        let node = self.ast.non_terminal(wrapper, vec![term]);
        self.ast.set_line(node, line);
        node
    }

    fn op_term(&mut self, op: &str) -> NodeId {
        self.ast.terminal(op, TermKind::Other)
    }

    fn str_node(&mut self, text: &str, line: u32) -> NodeId {
        let term = self.ast.terminal(text, TermKind::Str);
        self.ast.set_line(term, line);
        self.ast.non_terminal(vocab::str_lit(), vec![term])
    }

    // ----- TS type annotations -------------------------------------------------

    /// Parses a TypeScript type after `:` into a `TypeRef` carrying the
    /// head type name; generic arguments, unions, and array suffixes are
    /// consumed but only nested head names are kept.
    fn parse_type(&mut self) -> Result<NodeId, ParseError> {
        let line = self.line();
        let head = match self.bump() {
            Tok::Name(n) => n,
            Tok::Str(_) | Tok::Number(_) => "Object".to_owned(), // literal types
            Tok::Op("{") => {
                // Inline object type: skip the balanced block.
                let mut depth = 1;
                while depth > 0 {
                    match self.bump() {
                        Tok::Op("{") => depth += 1,
                        Tok::Op("}") => depth -= 1,
                        Tok::Eof => return Err(self.unexpected("unterminated object type")),
                        _ => {}
                    }
                }
                "Object".to_owned()
            }
            Tok::Op("[") => {
                let mut depth = 1;
                while depth > 0 {
                    match self.bump() {
                        Tok::Op("[") => depth += 1,
                        Tok::Op("]") => depth -= 1,
                        Tok::Eof => return Err(self.unexpected("unterminated tuple type")),
                        _ => {}
                    }
                }
                "Array".to_owned()
            }
            other => {
                return Err(ParseError::new(line, format!("expected type, got {other:?}")));
            }
        };
        let mut last_name = head;
        while matches!(self.peek(), Tok::Op(".")) && matches!(self.peek_at(1), Tok::Name(_)) {
            self.bump();
            if let Tok::Name(seg) = self.bump() {
                last_name = seg;
            }
        }
        let term = self.ast.terminal(&*last_name, TermKind::Ident);
        self.ast.set_role(term, NameRole::Type);
        self.ast.set_line(term, line);
        let mut kids = vec![term];
        if self.eat_op("<") {
            let mut depth = 1;
            while depth > 0 {
                match self.bump() {
                    Tok::Op("<") => depth += 1,
                    Tok::Op(">") => depth -= 1,
                    Tok::Op(">>") => depth -= 2,
                    Tok::Op(">>>") => depth -= 3,
                    Tok::Eof => return Err(self.unexpected("unterminated type arguments")),
                    _ => {}
                }
            }
        }
        while matches!(self.peek(), Tok::Op("[")) && matches!(self.peek_at(1), Tok::Op("]")) {
            self.bump();
            self.bump();
            kids.push(self.op_term("[]"));
        }
        // Union/intersection tails: keep only the head's name.
        while matches!(self.peek(), Tok::Op("|") | Tok::Op("&")) {
            self.bump();
            let _ = self.parse_type()?;
        }
        let node = self.ast.non_terminal(vocab::type_ref(), kids);
        self.ast.set_line(node, line);
        Ok(node)
    }

    // ----- statements ----------------------------------------------------------

    fn parse_block(&mut self) -> Result<Vec<NodeId>, ParseError> {
        self.expect_op("{")?;
        let mut stmts = Vec::new();
        while !self.eat_op("}") {
            if matches!(self.peek(), Tok::Eof) {
                return Err(self.unexpected("unterminated block"));
            }
            stmts.extend(self.parse_statement()?);
        }
        Ok(stmts)
    }

    fn parse_statement(&mut self) -> Result<Vec<NodeId>, ParseError> {
        let line = self.line();
        match self.peek().clone() {
            Tok::Op("{") => self.parse_block(),
            Tok::Op(";") => {
                self.bump();
                Ok(vec![self.ast.non_terminal(vocab::pass_stmt(), vec![])])
            }
            Tok::Name(n) => match n.as_str() {
                "import" => self.parse_import().map(|n| vec![n]),
                "export" => self.parse_export(),
                "function" => self.parse_function_def().map(|n| vec![n]),
                "class" => self.parse_class().map(|n| vec![n]),
                "async" if matches!(self.peek_at(1), Tok::Name(f) if f == "function") => {
                    self.bump();
                    self.parse_function_def().map(|n| vec![n])
                }
                "const" | "let" | "var" => self.parse_var_decl(),
                "if" => self.parse_if().map(|n| vec![n]),
                "while" => self.parse_while().map(|n| vec![n]),
                "do" => self.parse_do_while().map(|n| vec![n]),
                "for" => self.parse_for().map(|n| vec![n]),
                "try" => self.parse_try().map(|n| vec![n]),
                "switch" => self.parse_switch().map(|n| vec![n]),
                "with" => {
                    self.bump();
                    self.expect_op("(")?;
                    let e = self.parse_expr()?;
                    self.expect_op(")")?;
                    let body = self.parse_statement()?;
                    let b = self.ast.non_terminal("Body", body);
                    let node = self.ast.non_terminal(vocab::with_stmt(), vec![e, b]);
                    self.ast.set_line(node, line);
                    Ok(vec![node])
                }
                "return" => {
                    self.bump();
                    let mut kids = Vec::new();
                    if !self.at_stmt_end(line) {
                        kids.push(self.parse_expr()?);
                    }
                    self.eat_semi();
                    let node = self.ast.non_terminal(vocab::return_stmt(), kids);
                    self.ast.set_line(node, line);
                    Ok(vec![node])
                }
                "throw" => {
                    self.bump();
                    let e = self.parse_expr()?;
                    self.eat_semi();
                    let node = self.ast.non_terminal(vocab::throw_stmt(), vec![e]);
                    self.ast.set_line(node, line);
                    Ok(vec![node])
                }
                "break" | "continue" => {
                    self.bump();
                    // Optional label on the same line.
                    if self.line() == line && self.at_name() {
                        self.bump();
                    }
                    self.eat_semi();
                    let kind = if n == "break" {
                        vocab::break_stmt()
                    } else {
                        vocab::continue_stmt()
                    };
                    Ok(vec![self.ast.non_terminal(kind, vec![])])
                }
                "debugger" => {
                    self.bump();
                    self.eat_semi();
                    Ok(vec![self.ast.non_terminal(vocab::pass_stmt(), vec![])])
                }
                // TypeScript-only declarations carry no runtime naming
                // information; consume and drop them.
                "interface" | "enum" => {
                    self.bump();
                    let _ = self.expect_name()?;
                    while !matches!(self.peek(), Tok::Op("{")) {
                        if matches!(self.peek(), Tok::Eof) {
                            return Err(self.unexpected("unterminated declaration header"));
                        }
                        self.bump();
                    }
                    self.skip_balanced_braces()?;
                    Ok(vec![self.ast.non_terminal(vocab::pass_stmt(), vec![])])
                }
                "type" if matches!(self.peek_at(1), Tok::Name(_))
                    && matches!(self.peek_at(2), Tok::Op("=") | Tok::Op("<")) =>
                {
                    self.skip_to_semi()?;
                    Ok(vec![self.ast.non_terminal(vocab::pass_stmt(), vec![])])
                }
                // Label: `name: statement`.
                _ if !KEYWORDS.contains(&n.as_str())
                    && matches!(self.peek_at(1), Tok::Op(":")) =>
                {
                    self.bump();
                    self.bump();
                    self.parse_statement()
                }
                _ => self.parse_expr_statement(line),
            },
            _ => self.parse_expr_statement(line),
        }
    }

    /// True when the current token terminates a value-less statement
    /// (`return` / `break` with nothing following): `;`, `}`, EOF, or a
    /// token on a later line (automatic semicolon insertion).
    fn at_stmt_end(&self, stmt_line: u32) -> bool {
        matches!(self.peek(), Tok::Op(";") | Tok::Op("}") | Tok::Eof) || self.line() != stmt_line
    }

    fn parse_expr_statement(&mut self, line: u32) -> Result<Vec<NodeId>, ParseError> {
        let e = self.parse_expr()?;
        self.eat_semi();
        let v = self.ast.value(e);
        let node = if v == vocab::assign() || v == vocab::aug_assign() {
            e
        } else {
            self.ast.non_terminal(vocab::expr_stmt(), vec![e])
        };
        self.ast.set_line(node, line);
        Ok(vec![node])
    }

    fn skip_balanced_braces(&mut self) -> Result<(), ParseError> {
        self.expect_op("{")?;
        let mut depth = 1;
        while depth > 0 {
            match self.bump() {
                Tok::Op("{") => depth += 1,
                Tok::Op("}") => depth -= 1,
                Tok::Eof => return Err(self.unexpected("unterminated block")),
                _ => {}
            }
        }
        Ok(())
    }

    fn skip_to_semi(&mut self) -> Result<(), ParseError> {
        loop {
            match self.bump() {
                Tok::Op(";") => return Ok(()),
                Tok::Eof => return Ok(()),
                Tok::Op("{") => {
                    let mut depth = 1;
                    while depth > 0 {
                        match self.bump() {
                            Tok::Op("{") => depth += 1,
                            Tok::Op("}") => depth -= 1,
                            Tok::Eof => return Err(self.unexpected("unterminated block")),
                            _ => {}
                        }
                    }
                }
                _ => {}
            }
        }
    }

    // ----- modules -------------------------------------------------------------

    /// `import d from 'm'` / `import * as ns from 'm'` / `import {a, b as c}
    /// from 'm'` / `import 'm'` → `ImportFrom` with one `NameStore` per
    /// binding and the module specifier last as a `Str`.
    fn parse_import(&mut self) -> Result<NodeId, ParseError> {
        let line = self.line();
        self.expect_kw("import")?;
        let mut bindings = Vec::new();
        if let Tok::Str(m) = self.peek().clone() {
            self.bump();
            self.eat_semi();
            let module = self.str_node(&m, line);
            let node = self.ast.non_terminal(vocab::import_from(), vec![module]);
            self.ast.set_line(node, line);
            return Ok(node);
        }
        loop {
            if self.eat_op("*") {
                self.expect_contextual("as")?;
                let (name, nline) = self.expect_name()?;
                bindings.push(self.name_node(vocab::name_store(), &name, NameRole::Object, nline));
            } else if self.eat_op("{") {
                while !self.eat_op("}") {
                    let (imported, iline) = self.expect_name()?;
                    let (name, nline) = if self.eat_contextual("as") {
                        self.expect_name()?
                    } else {
                        (imported, iline)
                    };
                    bindings.push(self.name_node(
                        vocab::name_store(),
                        &name,
                        NameRole::Object,
                        nline,
                    ));
                    if !self.eat_op(",") && !matches!(self.peek(), Tok::Op("}")) {
                        return Err(self.unexpected("expected ',' or '}' in import list"));
                    }
                }
            } else {
                let (name, nline) = self.expect_name()?;
                bindings.push(self.name_node(vocab::name_store(), &name, NameRole::Object, nline));
            }
            if !self.eat_op(",") {
                break;
            }
        }
        self.expect_contextual("from")?;
        let module = match self.bump() {
            Tok::Str(m) => self.str_node(&m, line),
            other => {
                return Err(ParseError::new(
                    line,
                    format!("expected module specifier, got {other:?}"),
                ))
            }
        };
        self.eat_semi();
        let mut kids = vec![module];
        kids.extend(bindings);
        let node = self.ast.non_terminal(vocab::import_from(), kids);
        self.ast.set_line(node, line);
        Ok(node)
    }

    fn at_contextual(&self, word: &str) -> bool {
        matches!(self.peek(), Tok::Name(n) if n == word)
    }

    fn eat_contextual(&mut self, word: &str) -> bool {
        if self.at_contextual(word) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_contextual(&mut self, word: &str) -> Result<(), ParseError> {
        if self.eat_contextual(word) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("expected {word:?}")))
        }
    }

    fn parse_export(&mut self) -> Result<Vec<NodeId>, ParseError> {
        self.expect_kw("export")?;
        // Re-export / export-list forms declare nothing new.
        if matches!(self.peek(), Tok::Op("{")) {
            self.skip_balanced_braces()?;
            if self.eat_contextual("from") {
                self.bump(); // module specifier
            }
            self.eat_semi();
            return Ok(vec![self.ast.non_terminal(vocab::pass_stmt(), vec![])]);
        }
        if self.eat_op("*") {
            self.expect_contextual("from")?;
            self.bump(); // module specifier
            self.eat_semi();
            return Ok(vec![self.ast.non_terminal(vocab::pass_stmt(), vec![])]);
        }
        if self.eat_kw("default") {
            // `export default <declaration|expression>`.
            if self.at_kw("function") || self.at_kw("class")
                || (self.at_contextual("async")
                    && matches!(self.peek_at(1), Tok::Name(f) if f == "function"))
            {
                return self.parse_statement();
            }
            let line = self.line();
            return self.parse_expr_statement(line);
        }
        self.parse_statement()
    }

    // ----- declarations --------------------------------------------------------

    /// One `const`/`let`/`var` statement; each declarator becomes its own
    /// node: `Assign` when initialised (matching Python's shape, with an
    /// optional `TypeRef` from a TS annotation), `LocalVar` otherwise.
    fn parse_var_decl(&mut self) -> Result<Vec<NodeId>, ParseError> {
        self.bump(); // const / let / var
        let mut out = Vec::new();
        loop {
            let line = self.line();
            let target = self.parse_binding_target()?;
            let ty = if self.eat_op(":") {
                Some(self.parse_type()?)
            } else {
                None
            };
            if self.eat_op("=") {
                let value = self.parse_assignment()?;
                let mut kids = vec![target];
                kids.extend(ty);
                kids.push(value);
                let node = self.ast.non_terminal(vocab::assign(), kids);
                self.ast.set_line(node, line);
                out.push(node);
            } else {
                let mut kids: Vec<NodeId> = ty.into_iter().collect();
                kids.push(target);
                let node = self.ast.non_terminal(vocab::local_var(), kids);
                self.ast.set_line(node, line);
                out.push(node);
            }
            if !self.eat_op(",") {
                break;
            }
        }
        self.eat_semi();
        Ok(out)
    }

    /// A binding target: a plain name, or an object/array destructuring
    /// pattern lowered to a `TupleLit` of `NameStore`s.
    fn parse_binding_target(&mut self) -> Result<NodeId, ParseError> {
        if matches!(self.peek(), Tok::Op("{") | Tok::Op("[")) {
            let close = if matches!(self.peek(), Tok::Op("{")) {
                "}"
            } else {
                "]"
            };
            let line = self.line();
            self.bump();
            let mut names = Vec::new();
            while !self.eat_op(close) {
                if self.eat_op("...") {
                    let (name, nline) = self.expect_name()?;
                    names.push(self.name_node(vocab::name_store(), &name, NameRole::Object, nline));
                } else if self.at_name() {
                    let (key, kline) = self.expect_name()?;
                    if close == "}" && self.eat_op(":") {
                        // `{key: bound}` renames; the bound name is what is
                        // declared.
                        let (bound, bline) = self.expect_name()?;
                        names.push(self.name_node(
                            vocab::name_store(),
                            &bound,
                            NameRole::Object,
                            bline,
                        ));
                    } else {
                        names.push(self.name_node(
                            vocab::name_store(),
                            &key,
                            NameRole::Object,
                            kline,
                        ));
                    }
                    if self.eat_op("=") {
                        let _ = self.parse_assignment()?; // default value
                    }
                } else {
                    return Err(self.unexpected("expected binding name"));
                }
                if !self.eat_op(",") && !matches!(self.peek(), Tok::Op(o) if *o == close) {
                    return Err(self.unexpected("expected ',' in destructuring pattern"));
                }
            }
            let node = self.ast.non_terminal(vocab::tuple_lit(), names);
            self.ast.set_line(node, line);
            Ok(node)
        } else {
            let (name, nline) = self.expect_name()?;
            Ok(self.name_node(vocab::name_store(), &name, NameRole::Object, nline))
        }
    }

    /// `function name(params) { body }` → `FunctionDef` with the body
    /// spliced in as direct children (Python's shape).
    fn parse_function_def(&mut self) -> Result<NodeId, ParseError> {
        let line = self.line();
        self.expect_kw("function")?;
        self.eat_op("*"); // generator
        let (name, nline) = self.expect_name()?;
        let name_node = self.name_node(vocab::name_store(), &name, NameRole::Function, nline);
        let params = self.parse_params()?;
        let ret_ty = if self.eat_op(":") {
            Some(self.parse_type()?)
        } else {
            None
        };
        let body = self.parse_block()?;
        let mut kids = vec![name_node, params];
        kids.extend(ret_ty);
        kids.extend(body);
        let node = self.ast.non_terminal(vocab::function_def(), kids);
        self.ast.set_line(node, line);
        Ok(node)
    }

    fn parse_params(&mut self) -> Result<NodeId, ParseError> {
        self.expect_op("(")?;
        let mut params = Vec::new();
        while !matches!(self.peek(), Tok::Op(")")) {
            let variadic = self.eat_op("...");
            if matches!(self.peek(), Tok::Op("{") | Tok::Op("[")) {
                // Destructured parameter: the pattern is kept but binds no
                // single receiver name.
                let pat = self.parse_binding_target()?;
                if self.eat_op(":") {
                    let _ = self.parse_type()?;
                }
                if self.eat_op("=") {
                    let _ = self.parse_assignment()?;
                }
                params.push(self.ast.non_terminal(vocab::param(), vec![pat]));
            } else {
                let (name, nline) = self.expect_name()?;
                self.eat_op("?"); // TS optional marker
                let mut kids = Vec::new();
                if self.eat_op(":") {
                    kids.push(self.parse_type()?);
                }
                kids.push(self.name_node(vocab::name_param(), &name, NameRole::Object, nline));
                if self.eat_op("=") {
                    kids.push(self.parse_assignment()?);
                }
                let wrapper = if variadic {
                    vocab::star_param()
                } else {
                    vocab::param()
                };
                params.push(self.ast.non_terminal(wrapper, kids));
            }
            if !self.eat_op(",") {
                break;
            }
        }
        self.expect_op(")")?;
        Ok(self.ast.non_terminal(vocab::params(), params))
    }

    fn parse_class(&mut self) -> Result<NodeId, ParseError> {
        let line = self.line();
        self.expect_kw("class")?;
        let (name, nline) = self.expect_name()?;
        let name_node = self.name_node(vocab::name_store(), &name, NameRole::Type, nline);
        let mut bases = Vec::new();
        if self.eat_kw("extends") {
            bases.push(self.parse_type()?);
        }
        if self.eat_contextual("implements") {
            loop {
                let _ = self.parse_type()?;
                if !self.eat_op(",") {
                    break;
                }
            }
        }
        let bases_node = self.ast.non_terminal(vocab::bases(), bases);
        self.expect_op("{")?;
        let mut kids = vec![name_node, bases_node];
        while !self.eat_op("}") {
            if matches!(self.peek(), Tok::Eof) {
                return Err(self.unexpected("unterminated class body"));
            }
            if self.eat_op(";") {
                continue;
            }
            kids.push(self.parse_class_member()?);
        }
        let class = self.ast.non_terminal(vocab::class_def(), kids);
        self.ast.set_line(class, line);
        Ok(class)
    }

    fn parse_class_member(&mut self) -> Result<NodeId, ParseError> {
        let line = self.line();
        // Modifiers, in any sane order. `static`/`async`/`get`/`set` are
        // contextual: they are modifiers only when another member name
        // follows.
        loop {
            let is_modifier = matches!(
                self.peek(),
                Tok::Name(m) if matches!(
                    m.as_str(),
                    "static" | "async" | "get" | "set" | "public" | "private" | "protected"
                        | "readonly" | "override" | "abstract"
                )
            ) && matches!(self.peek_at(1), Tok::Name(_));
            if is_modifier {
                self.bump();
            } else {
                break;
            }
        }
        self.eat_op("*"); // generator method
        let (name, nline) = self.expect_name()?;
        if matches!(self.peek(), Tok::Op("(")) {
            // Method / constructor.
            let wrapper = if name == "constructor" {
                vocab::ctor_decl()
            } else {
                vocab::function_def()
            };
            let name_node = self.name_node(vocab::name_store(), &name, NameRole::Function, nline);
            let params = self.parse_params()?;
            let ret_ty = if self.eat_op(":") {
                Some(self.parse_type()?)
            } else {
                None
            };
            let body = self.parse_block()?;
            let mut kids = vec![name_node, params];
            kids.extend(ret_ty);
            kids.extend(body);
            let node = self.ast.non_terminal(wrapper, kids);
            self.ast.set_line(node, line);
            return Ok(node);
        }
        // Field: `name [: Type] [= init] ;`
        self.eat_op("?");
        let name_node = self.name_node(vocab::name_store(), &name, NameRole::Object, nline);
        let mut kids = Vec::new();
        if self.eat_op(":") {
            kids.push(self.parse_type()?);
        }
        kids.push(name_node);
        if self.eat_op("=") {
            kids.push(self.parse_assignment()?);
        }
        self.eat_semi();
        let node = self.ast.non_terminal(vocab::field_decl(), kids);
        self.ast.set_line(node, line);
        Ok(node)
    }

    // ----- control flow --------------------------------------------------------

    fn parse_if(&mut self) -> Result<NodeId, ParseError> {
        let line = self.line();
        self.expect_kw("if")?;
        self.expect_op("(")?;
        let cond = self.parse_expr()?;
        self.expect_op(")")?;
        let then = self.parse_statement()?;
        let body = self.ast.non_terminal("Body", then);
        let mut kids = vec![cond, body];
        if self.eat_kw("else") {
            let els = self.parse_statement()?;
            kids.push(self.ast.non_terminal("OrElse", els));
        }
        let node = self.ast.non_terminal(vocab::if_stmt(), kids);
        self.ast.set_line(node, line);
        Ok(node)
    }

    fn parse_while(&mut self) -> Result<NodeId, ParseError> {
        let line = self.line();
        self.expect_kw("while")?;
        self.expect_op("(")?;
        let cond = self.parse_expr()?;
        self.expect_op(")")?;
        let body = self.parse_statement()?;
        let b = self.ast.non_terminal("Body", body);
        let node = self.ast.non_terminal(vocab::while_stmt(), vec![cond, b]);
        self.ast.set_line(node, line);
        Ok(node)
    }

    fn parse_do_while(&mut self) -> Result<NodeId, ParseError> {
        let line = self.line();
        self.expect_kw("do")?;
        let body = self.parse_statement()?;
        self.expect_kw("while")?;
        self.expect_op("(")?;
        let cond = self.parse_expr()?;
        self.expect_op(")")?;
        self.eat_semi();
        let b = self.ast.non_terminal("Body", body);
        let node = self.ast.non_terminal("DoWhile", vec![cond, b]);
        self.ast.set_line(node, line);
        Ok(node)
    }

    fn parse_for(&mut self) -> Result<NodeId, ParseError> {
        let line = self.line();
        self.expect_kw("for")?;
        self.eat_contextual("await");
        self.expect_op("(")?;
        // `for (const x of xs)` / `for (x in o)` → For [target, iter, Body]
        // (the Python enhanced-for shape); otherwise the classic three-clause
        // form → ForClassic.
        let decl_kw = matches!(self.peek(), Tok::Name(k) if matches!(k.as_str(), "const" | "let" | "var"));
        if decl_kw {
            let save = self.pos;
            self.bump();
            let target = self.parse_binding_target();
            if let Ok(target) = target {
                if self.eat_contextual("of") || self.eat_kw("in") {
                    return self.finish_for_each(line, target);
                }
            }
            self.pos = save;
        } else if !matches!(self.peek(), Tok::Op(";")) {
            // A unary-level prefix can be a for-each target (`x`, `x.y`,
            // `[a, b]`); stopping below `in`'s precedence keeps the `in`
            // operator from swallowing `for (x in o)`.
            let save = self.pos;
            if let Ok(e) = self.parse_unary() {
                if self.eat_contextual("of") || self.eat_kw("in") {
                    let target = self.to_store(e);
                    return self.finish_for_each(line, target);
                }
            }
            self.pos = save;
        }
        // Classic for.
        let init: Vec<NodeId> = if self.eat_op(";") {
            vec![]
        } else if matches!(self.peek(), Tok::Name(k) if matches!(k.as_str(), "const" | "let" | "var"))
        {
            self.parse_var_decl()? // consumes the `;`
        } else {
            let mut exprs = vec![self.parse_expr()?];
            while self.eat_op(",") {
                exprs.push(self.parse_expr()?);
            }
            self.expect_op(";")?;
            exprs
        };
        let init_node = self.ast.non_terminal("Init", init);
        let cond = if matches!(self.peek(), Tok::Op(";")) {
            self.ast.non_terminal("Cond", vec![])
        } else {
            let c = self.parse_expr()?;
            self.ast.non_terminal("Cond", vec![c])
        };
        self.expect_op(";")?;
        let update = if matches!(self.peek(), Tok::Op(")")) {
            self.ast.non_terminal("Update", vec![])
        } else {
            let mut us = vec![self.parse_expr()?];
            while self.eat_op(",") {
                us.push(self.parse_expr()?);
            }
            self.ast.non_terminal("Update", us)
        };
        self.expect_op(")")?;
        let body = self.parse_statement()?;
        let b = self.ast.non_terminal("Body", body);
        let node = self
            .ast
            .non_terminal(vocab::for_classic(), vec![init_node, cond, update, b]);
        self.ast.set_line(node, line);
        Ok(node)
    }

    fn finish_for_each(&mut self, line: u32, target: NodeId) -> Result<NodeId, ParseError> {
        let iter = self.parse_expr()?;
        self.expect_op(")")?;
        let body = self.parse_statement()?;
        let b = self.ast.non_terminal("Body", body);
        let node = self.ast.non_terminal(vocab::for_stmt(), vec![target, iter, b]);
        self.ast.set_line(node, line);
        Ok(node)
    }

    fn parse_try(&mut self) -> Result<NodeId, ParseError> {
        let line = self.line();
        self.expect_kw("try")?;
        let body = self.parse_block()?;
        let mut kids = vec![self.ast.non_terminal("Body", body)];
        if self.eat_kw("catch") {
            let hline = self.line();
            let mut hkids = Vec::new();
            if self.eat_op("(") {
                let target = self.parse_binding_target()?;
                if self.eat_op(":") {
                    let _ = self.parse_type()?; // TS catch annotation
                }
                hkids.push(target);
                self.expect_op(")")?;
            }
            let hbody = self.parse_block()?;
            hkids.push(self.ast.non_terminal("Body", hbody));
            let h = self.ast.non_terminal(vocab::handler(), hkids);
            self.ast.set_line(h, hline);
            kids.push(h);
        }
        if self.eat_kw("finally") {
            let fbody = self.parse_block()?;
            kids.push(self.ast.non_terminal("Finally", fbody));
        }
        let node = self.ast.non_terminal(vocab::try_stmt(), kids);
        self.ast.set_line(node, line);
        Ok(node)
    }

    fn parse_switch(&mut self) -> Result<NodeId, ParseError> {
        let line = self.line();
        self.expect_kw("switch")?;
        self.expect_op("(")?;
        let scrutinee = self.parse_expr()?;
        self.expect_op(")")?;
        self.expect_op("{")?;
        let mut kids = vec![scrutinee];
        let mut current_case: Vec<NodeId> = Vec::new();
        let mut has_case = false;
        while !self.eat_op("}") {
            if matches!(self.peek(), Tok::Eof) {
                return Err(self.unexpected("unterminated switch"));
            }
            if self.at_kw("case") || self.at_kw("default") {
                if has_case {
                    kids.push(
                        self.ast
                            .non_terminal("Case", std::mem::take(&mut current_case)),
                    );
                }
                has_case = true;
                if self.eat_kw("case") {
                    current_case.push(self.parse_expr()?);
                } else {
                    self.expect_kw("default")?;
                }
                self.expect_op(":")?;
            } else {
                current_case.extend(self.parse_statement()?);
            }
        }
        if has_case {
            kids.push(self.ast.non_terminal("Case", current_case));
        }
        let node = self.ast.non_terminal(vocab::switch_stmt(), kids);
        self.ast.set_line(node, line);
        Ok(node)
    }

    // ----- expressions -----------------------------------------------------------

    fn parse_expr(&mut self) -> Result<NodeId, ParseError> {
        self.parse_assignment()
    }

    fn parse_assignment(&mut self) -> Result<NodeId, ParseError> {
        let left = self.parse_ternary()?;
        if self.eat_op("=") {
            let target = self.to_store(left);
            let value = self.parse_assignment()?;
            return Ok(self.ast.non_terminal(vocab::assign(), vec![target, value]));
        }
        for op in [
            "+=", "-=", "*=", "/=", "%=", "**=", "&=", "|=", "^=", "<<=", ">>=", ">>>=", "&&=",
            "||=", "??=",
        ] {
            if matches!(self.peek(), Tok::Op(o) if *o == op) {
                self.bump();
                let target = self.to_store(left);
                let op_node = self.op_term(op);
                let value = self.parse_assignment()?;
                return Ok(self
                    .ast
                    .non_terminal(vocab::aug_assign(), vec![target, op_node, value]));
            }
        }
        Ok(left)
    }

    fn to_store(&mut self, node: NodeId) -> NodeId {
        let v = self.ast.value(node);
        if v == vocab::name_load() {
            let kids = self.ast.children(node).to_vec();
            let line = self.ast.line(node);
            let new = self.ast.non_terminal(vocab::name_store(), kids);
            self.ast.set_line(new, line);
            new
        } else if v == vocab::attribute_load() {
            let kids = self.ast.children(node).to_vec();
            let line = self.ast.line(node);
            let new = self.ast.non_terminal(vocab::attribute_store(), kids);
            self.ast.set_line(new, line);
            new
        } else if v == vocab::list_lit() || v == vocab::tuple_lit() {
            // Destructuring assignment: convert each element.
            let kids = self.ast.children(node).to_vec();
            let line = self.ast.line(node);
            let new_kids: Vec<NodeId> = kids.into_iter().map(|k| self.to_store(k)).collect();
            let new = self.ast.non_terminal(vocab::tuple_lit(), new_kids);
            self.ast.set_line(new, line);
            new
        } else {
            node
        }
    }

    fn parse_ternary(&mut self) -> Result<NodeId, ParseError> {
        let cond = self.parse_nullish()?;
        // `?.` is optional chaining, handled in postfix; a bare `?` here is
        // the conditional operator.
        if matches!(self.peek(), Tok::Op("?")) {
            self.bump();
            let then = self.parse_assignment()?;
            self.expect_op(":")?;
            let els = self.parse_assignment()?;
            return Ok(self
                .ast
                .non_terminal(vocab::ternary(), vec![cond, then, els]));
        }
        Ok(cond)
    }

    fn parse_nullish(&mut self) -> Result<NodeId, ParseError> {
        let mut left = self.parse_or()?;
        while self.eat_op("??") {
            let op = self.op_term("??");
            let right = self.parse_or()?;
            left = self.ast.non_terminal(vocab::bool_op(), vec![left, op, right]);
        }
        Ok(left)
    }

    fn parse_or(&mut self) -> Result<NodeId, ParseError> {
        let mut left = self.parse_and()?;
        while self.eat_op("||") {
            let op = self.op_term("||");
            let right = self.parse_and()?;
            left = self.ast.non_terminal(vocab::bool_op(), vec![left, op, right]);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<NodeId, ParseError> {
        let mut left = self.parse_binary_level(0)?;
        while self.eat_op("&&") {
            let op = self.op_term("&&");
            let right = self.parse_binary_level(0)?;
            left = self.ast.non_terminal(vocab::bool_op(), vec![left, op, right]);
        }
        Ok(left)
    }

    fn parse_binary_level(&mut self, level: usize) -> Result<NodeId, ParseError> {
        const LEVELS: &[&[&str]] = &[
            &["|"],
            &["^"],
            &["&"],
            &["===", "!==", "==", "!="],
            &["<", ">", "<=", ">="],
            &["<<", ">>", ">>>"],
            &["+", "-"],
            &["*", "/", "%"],
            &["**"],
        ];
        if level >= LEVELS.len() {
            return self.parse_unary();
        }
        let mut left = self.parse_binary_level(level + 1)?;
        loop {
            // `instanceof` / `in` sit at relational precedence.
            if level == 4 && (self.at_kw("instanceof") || self.at_kw("in")) {
                let kw = match self.bump() {
                    Tok::Name(n) => n,
                    _ => unreachable!("peeked a name"),
                };
                let op_node = self.op_term(if kw == "in" { "in" } else { "instanceof" });
                let right = self.parse_binary_level(level + 1)?;
                left = self
                    .ast
                    .non_terminal(vocab::compare(), vec![left, op_node, right]);
                continue;
            }
            let matched = match self.peek() {
                Tok::Op(o) => LEVELS[level].iter().find(|&&c| c == *o).copied(),
                _ => None,
            };
            let Some(op) = matched else { break };
            self.bump();
            let op_node = self.op_term(op);
            // `**` is right-associative.
            let right = if op == "**" {
                self.parse_binary_level(level)?
            } else {
                self.parse_binary_level(level + 1)?
            };
            let kind = if matches!(op, "===" | "!==" | "==" | "!=" | "<" | ">" | "<=" | ">=") {
                vocab::compare()
            } else {
                vocab::bin_op()
            };
            left = self.ast.non_terminal(kind, vec![left, op_node, right]);
            if op == "**" {
                break;
            }
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<NodeId, ParseError> {
        for op in ["!", "-", "+", "~", "++", "--"] {
            if matches!(self.peek(), Tok::Op(o) if *o == op) {
                self.bump();
                let op_node = self.op_term(op);
                let operand = self.parse_unary()?;
                return Ok(self
                    .ast
                    .non_terminal(vocab::unary_op(), vec![op_node, operand]));
            }
        }
        for kw in ["typeof", "void", "delete", "await", "yield"] {
            if self.at_kw(kw) || (matches!(kw, "await" | "yield") && self.at_contextual(kw)) {
                // `yield` with no operand ends the expression.
                let line = self.line();
                self.bump();
                if kw == "yield" && self.at_stmt_end(line) {
                    let op_node = self.op_term(kw);
                    let empty = self.ast.non_terminal(vocab::none_lit(), vec![]);
                    return Ok(self
                        .ast
                        .non_terminal(vocab::unary_op(), vec![op_node, empty]));
                }
                self.eat_op("*"); // yield*
                let op_node = self.op_term(kw);
                let operand = self.parse_unary()?;
                return Ok(self
                    .ast
                    .non_terminal(vocab::unary_op(), vec![op_node, operand]));
            }
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Result<NodeId, ParseError> {
        let mut node = self.parse_atom()?;
        loop {
            let at_attr = matches!(self.peek(), Tok::Op(".") | Tok::Op("?."))
                && matches!(self.peek_at(1), Tok::Name(_));
            if at_attr {
                self.bump();
                let (name, nline) = match self.bump() {
                    Tok::Name(n) => (n, self.line()),
                    _ => unreachable!("peeked a name"),
                };
                let attr = self.name_node(vocab::attr(), &name, NameRole::Object, nline);
                node = self
                    .ast
                    .non_terminal(vocab::attribute_load(), vec![node, attr]);
                self.ast.set_line(node, nline);
            } else if matches!(self.peek(), Tok::Op("(")) {
                node = self.parse_call(node)?;
            } else if matches!(self.peek(), Tok::Op("?.")) && matches!(self.peek_at(1), Tok::Op("(")) {
                self.bump();
                node = self.parse_call(node)?;
            } else if self.eat_op("[") {
                let idx = self.parse_expr()?;
                self.expect_op("]")?;
                node = self.ast.non_terminal(vocab::subscript(), vec![node, idx]);
            } else if matches!(self.peek(), Tok::Op("?.")) && matches!(self.peek_at(1), Tok::Op("[")) {
                self.bump();
                self.bump();
                let idx = self.parse_expr()?;
                self.expect_op("]")?;
                node = self.ast.non_terminal(vocab::subscript(), vec![node, idx]);
            } else if matches!(self.peek(), Tok::Op("++") | Tok::Op("--")) {
                let op = match self.bump() {
                    Tok::Op(o) => o,
                    _ => unreachable!("peeked an op"),
                };
                let op_node = self.op_term(op);
                node = self.ast.non_terminal(vocab::unary_op(), vec![node, op_node]);
            } else if matches!(self.peek(), Tok::Template(_)) {
                // Tagged template: `tag`…`` — a call with one string arg.
                let line = self.line();
                let text = match self.bump() {
                    Tok::Template(t) => t,
                    _ => unreachable!("peeked a template"),
                };
                self.mark_callee(node);
                let arg = self.str_node(&text, line);
                node = self.ast.non_terminal(vocab::call(), vec![node, arg]);
                self.ast.set_line(node, line);
            } else if self.at_contextual("as") && matches!(self.peek_at(1), Tok::Name(_)) {
                // TS `expr as Type` cast.
                self.bump();
                if self.eat_kw("const") {
                    continue; // `as const` leaves the value unchanged
                }
                let ty = self.parse_type()?;
                node = self.ast.non_terminal(vocab::cast(), vec![ty, node]);
            } else {
                break;
            }
        }
        Ok(node)
    }

    fn parse_call(&mut self, callee: NodeId) -> Result<NodeId, ParseError> {
        let line = self.line();
        self.expect_op("(")?;
        self.mark_callee(callee);
        let mut kids = vec![callee];
        while !matches!(self.peek(), Tok::Op(")")) {
            if self.eat_op("...") {
                let e = self.parse_assignment()?;
                kids.push(self.ast.non_terminal(vocab::starred(), vec![e]));
            } else {
                kids.push(self.parse_assignment()?);
            }
            if !self.eat_op(",") {
                break;
            }
        }
        self.expect_op(")")?;
        let call = self.ast.non_terminal(vocab::call(), kids);
        self.ast.set_line(call, line);
        Ok(call)
    }

    fn mark_callee(&mut self, callee: NodeId) {
        let v = self.ast.value(callee);
        if v == vocab::attribute_load() {
            if let Some(&attr) = self.ast.children(callee).get(1) {
                if let Some(&term) = self.ast.children(attr).first() {
                    self.ast.set_role(term, NameRole::Function);
                }
            }
        } else if v == vocab::name_load() {
            if let Some(&term) = self.ast.children(callee).first() {
                self.ast.set_role(term, NameRole::Function);
            }
        }
    }

    fn parse_atom(&mut self) -> Result<NodeId, ParseError> {
        let line = self.line();
        let node = match self.peek().clone() {
            Tok::Number(n) => {
                self.bump();
                let term = self.ast.terminal(&*n, TermKind::Num);
                self.ast.set_line(term, line);
                self.ast.non_terminal(vocab::num(), vec![term])
            }
            Tok::Str(s) => {
                self.bump();
                let term = self.ast.terminal(&*s, TermKind::Str);
                self.ast.set_line(term, line);
                self.ast.non_terminal(vocab::str_lit(), vec![term])
            }
            Tok::Template(t) => {
                self.bump();
                let term = self.ast.terminal(&*t, TermKind::Str);
                self.ast.set_line(term, line);
                self.ast.non_terminal(vocab::str_lit(), vec![term])
            }
            Tok::Regex(r) => {
                self.bump();
                let term = self.ast.terminal(&*r, TermKind::Str);
                self.ast.set_line(term, line);
                self.ast.non_terminal(vocab::str_lit(), vec![term])
            }
            Tok::Name(n) => match n.as_str() {
                "true" | "false" => {
                    self.bump();
                    let term = self.ast.terminal(&*n, TermKind::Bool);
                    self.ast.non_terminal(vocab::bool_lit(), vec![term])
                }
                "null" | "undefined" => {
                    self.bump();
                    let term = self.ast.terminal(&*n, TermKind::Null);
                    self.ast.non_terminal(vocab::none_lit(), vec![term])
                }
                "this" | "super" => {
                    self.bump();
                    let term = self.ast.terminal(&*n, TermKind::Ident);
                    self.ast.set_role(term, NameRole::Object);
                    self.ast.set_line(term, line);
                    self.ast.non_terminal(vocab::name_load(), vec![term])
                }
                "new" => {
                    self.bump();
                    // `new a.b.C(args)` — the last segment is the type.
                    let ty = self.parse_type()?;
                    let mut kids = vec![ty];
                    if self.eat_op("(") {
                        while !matches!(self.peek(), Tok::Op(")")) {
                            if self.eat_op("...") {
                                let e = self.parse_assignment()?;
                                kids.push(self.ast.non_terminal(vocab::starred(), vec![e]));
                            } else {
                                kids.push(self.parse_assignment()?);
                            }
                            if !self.eat_op(",") {
                                break;
                            }
                        }
                        self.expect_op(")")?;
                    }
                    self.ast.non_terminal(vocab::new_object(), kids)
                }
                "function" => {
                    // Function expression → Lambda (optionally named).
                    self.bump();
                    self.eat_op("*");
                    if self.at_name() {
                        self.bump();
                    }
                    let params = self.parse_params()?;
                    if self.eat_op(":") {
                        let _ = self.parse_type()?;
                    }
                    let body = self.parse_block()?;
                    let b = self.ast.non_terminal("Body", body);
                    self.ast.non_terminal(vocab::lambda(), vec![params, b])
                }
                "async"
                    if matches!(self.peek_at(1), Tok::Name(f) if f == "function")
                        || matches!(self.peek_at(1), Tok::Op("("))
                        || (matches!(self.peek_at(1), Tok::Name(_))
                            && matches!(self.peek_at(2), Tok::Op("=>"))) =>
                {
                    self.bump();
                    return self.parse_atom();
                }
                _ if KEYWORDS.contains(&n.as_str()) => {
                    return Err(self.unexpected("unexpected keyword in expression"));
                }
                _ => {
                    self.bump();
                    // Single-parameter arrow: `x => expr`.
                    if matches!(self.peek(), Tok::Op("=>")) {
                        self.bump();
                        let pnode = self.name_node(vocab::name_param(), &n, NameRole::Object, line);
                        let param = self.ast.non_terminal(vocab::param(), vec![pnode]);
                        let params = self.ast.non_terminal(vocab::params(), vec![param]);
                        let body = self.parse_arrow_body()?;
                        self.ast.non_terminal(vocab::lambda(), vec![params, body])
                    } else {
                        let term = self.ast.terminal(&*n, TermKind::Ident);
                        self.ast.set_role(term, NameRole::Object);
                        self.ast.set_line(term, line);
                        let node = self.ast.non_terminal(vocab::name_load(), vec![term]);
                        self.ast.set_line(node, line);
                        node
                    }
                }
            },
            Tok::Op("(") => {
                self.bump();
                // Possibly an arrow parameter list: `(a, b) => …`.
                let save = self.pos;
                let ast_len = self.ast.len();
                if let Ok(l) = self.try_parse_arrow_after_paren() {
                    return Ok(l);
                }
                self.pos = save;
                debug_assert!(self.ast.len() >= ast_len);
                let mut inner = self.parse_expr()?;
                // Comma/sequence expression: lowered like a tuple.
                if matches!(self.peek(), Tok::Op(",")) {
                    let mut items = vec![inner];
                    while self.eat_op(",") {
                        items.push(self.parse_expr()?);
                    }
                    inner = self.ast.non_terminal(vocab::tuple_lit(), items);
                }
                self.expect_op(")")?;
                inner
            }
            Tok::Op("[") => {
                self.bump();
                let mut items = Vec::new();
                while !matches!(self.peek(), Tok::Op("]")) {
                    if self.eat_op("...") {
                        let e = self.parse_assignment()?;
                        items.push(self.ast.non_terminal(vocab::starred(), vec![e]));
                    } else {
                        items.push(self.parse_assignment()?);
                    }
                    if !self.eat_op(",") {
                        break;
                    }
                }
                self.expect_op("]")?;
                self.ast.non_terminal(vocab::list_lit(), items)
            }
            Tok::Op("{") => self.parse_object_literal()?,
            _ => return Err(self.unexpected("expected expression")),
        };
        self.ast.set_line(node, line);
        Ok(node)
    }

    /// Called with `(` already consumed: parses `a, b = 1, ...rest) => body`
    /// or fails so the caller can re-parse as a parenthesised expression.
    fn try_parse_arrow_after_paren(&mut self) -> Result<NodeId, ParseError> {
        let mut params = Vec::new();
        while !matches!(self.peek(), Tok::Op(")")) {
            let variadic = self.eat_op("...");
            if matches!(self.peek(), Tok::Op("{") | Tok::Op("[")) {
                let pat = self.parse_binding_target()?;
                if self.eat_op(":") {
                    let _ = self.parse_type()?;
                }
                if self.eat_op("=") {
                    let _ = self.parse_assignment()?;
                }
                params.push(self.ast.non_terminal(vocab::param(), vec![pat]));
            } else {
                let (name, nline) = self.expect_name()?;
                self.eat_op("?");
                let mut kids = Vec::new();
                if self.eat_op(":") {
                    kids.push(self.parse_type()?);
                }
                kids.push(self.name_node(vocab::name_param(), &name, NameRole::Object, nline));
                if self.eat_op("=") {
                    kids.push(self.parse_assignment()?);
                }
                let wrapper = if variadic {
                    vocab::star_param()
                } else {
                    vocab::param()
                };
                params.push(self.ast.non_terminal(wrapper, kids));
            }
            if !self.eat_op(",") {
                break;
            }
        }
        self.expect_op(")")?;
        if self.eat_op(":") {
            let _ = self.parse_type()?; // TS return annotation
        }
        if !self.eat_op("=>") {
            return Err(self.unexpected("not an arrow function"));
        }
        let params_node = self.ast.non_terminal(vocab::params(), params);
        let body = self.parse_arrow_body()?;
        Ok(self
            .ast
            .non_terminal(vocab::lambda(), vec![params_node, body]))
    }

    fn parse_arrow_body(&mut self) -> Result<NodeId, ParseError> {
        if matches!(self.peek(), Tok::Op("{")) {
            let b = self.parse_block()?;
            Ok(self.ast.non_terminal("Body", b))
        } else {
            self.parse_assignment()
        }
    }

    /// `{key: value, shorthand, method() {}, [computed]: v, ...spread}` →
    /// `DictLit` with alternating key/value children (Python's shape).
    fn parse_object_literal(&mut self) -> Result<NodeId, ParseError> {
        let line = self.line();
        self.expect_op("{")?;
        let mut kids = Vec::new();
        while !matches!(self.peek(), Tok::Op("}")) {
            if self.eat_op("...") {
                let e = self.parse_assignment()?;
                kids.push(self.ast.non_terminal(vocab::double_starred(), vec![e]));
            } else if self.eat_op("[") {
                let key = self.parse_expr()?;
                self.expect_op("]")?;
                self.expect_op(":")?;
                let value = self.parse_assignment()?;
                kids.push(key);
                kids.push(value);
            } else {
                // `get`/`set`/`async` are modifiers only when a key follows.
                while matches!(self.peek(), Tok::Name(m) if matches!(m.as_str(), "get" | "set" | "async"))
                    && (matches!(self.peek_at(1), Tok::Name(_))
                        || matches!(self.peek_at(1), Tok::Str(_)))
                {
                    self.bump();
                }
                self.eat_op("*");
                let (key, kline) = match self.bump() {
                    Tok::Name(k) => (k, line),
                    Tok::Str(k) => (k, line),
                    Tok::Number(k) => (k, line),
                    other => {
                        return Err(ParseError::new(
                            self.line(),
                            format!("expected object key, got {other:?}"),
                        ))
                    }
                };
                if matches!(self.peek(), Tok::Op("(")) {
                    // Method shorthand → key + Lambda value.
                    let params = self.parse_params()?;
                    if self.eat_op(":") {
                        let _ = self.parse_type()?;
                    }
                    let body = self.parse_block()?;
                    let b = self.ast.non_terminal("Body", body);
                    let lambda = self.ast.non_terminal(vocab::lambda(), vec![params, b]);
                    kids.push(self.str_node(&key, kline));
                    kids.push(lambda);
                } else if self.eat_op(":") {
                    let value = self.parse_assignment()?;
                    kids.push(self.str_node(&key, kline));
                    kids.push(value);
                } else {
                    // Shorthand `{name}`: the value is the in-scope name.
                    kids.push(self.str_node(&key, kline));
                    kids.push(self.name_node(vocab::name_load(), &key, NameRole::Object, kline));
                }
            }
            if !self.eat_op(",") {
                break;
            }
        }
        self.expect_op("}")?;
        let node = self.ast.non_terminal(vocab::dict_lit(), kids);
        self.ast.set_line(node, line);
        Ok(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sexp(src: &str) -> String {
        let ast = parse(src).unwrap_or_else(|e| panic!("parse failed for {src:?}: {e}"));
        ast.to_sexp(ast.root())
    }

    fn in_fn(body: &str) -> String {
        sexp(&format!("function f() {{ {body} }}"))
    }

    #[test]
    fn const_decl_matches_python_assign_shape() {
        let s = sexp("const count = 1;");
        assert!(s.contains("(Assign (NameStore count) (Num 1))"), "{s}");
    }

    #[test]
    fn uninitialised_let_is_local_var() {
        let s = sexp("let cursor;");
        assert!(s.contains("(LocalVar (NameStore cursor))"), "{s}");
    }

    #[test]
    fn method_call_shape_matches_python() {
        let s = in_fn("this.publicKey = publickKey;");
        assert!(
            s.contains(
                "(Assign (AttributeStore (NameLoad this) (Attr publicKey)) (NameLoad publickKey))"
            ),
            "{s}"
        );
    }

    #[test]
    fn call_shape_matches_other_languages() {
        let s = in_fn("logger.warn(message);");
        assert!(
            s.contains("(ExprStmt (Call (AttributeLoad (NameLoad logger) (Attr warn)) (NameLoad message)))"),
            "{s}"
        );
    }

    #[test]
    fn class_with_methods() {
        let s = sexp(
            "class Widget extends Base { constructor(size) { this.size = size; } resize(newSize) { this.size = newSize; } }",
        );
        assert!(s.contains("(ClassDef (NameStore Widget) (Bases (TypeRef Base))"), "{s}");
        assert!(s.contains("(CtorDecl (NameStore constructor) (Params (Param (NameParam size)))"), "{s}");
        assert!(s.contains("(FunctionDef (NameStore resize) (Params (Param (NameParam newSize)))"), "{s}");
    }

    #[test]
    fn class_fields() {
        let s = sexp("class A { count = 0; name; }");
        assert!(s.contains("(FieldDecl (NameStore count) (Num 0))"), "{s}");
        assert!(s.contains("(FieldDecl (NameStore name))"), "{s}");
    }

    #[test]
    fn arrow_functions() {
        let s = sexp("const double = x => x * 2;");
        assert!(s.contains("(Lambda (Params (Param (NameParam x)))"), "{s}");
        let s = sexp("items.map((item, index) => item.value);");
        assert!(s.contains("(Param (NameParam item)) (Param (NameParam index))"), "{s}");
    }

    #[test]
    fn for_of_matches_python_for_shape() {
        let s = in_fn("for (const item of items) { use(item); }");
        assert!(s.contains("(For (NameStore item) (NameLoad items)"), "{s}");
    }

    #[test]
    fn for_in() {
        let s = in_fn("for (const key in table) { use(key); }");
        assert!(s.contains("(For (NameStore key) (NameLoad table)"), "{s}");
    }

    #[test]
    fn classic_for() {
        let s = in_fn("for (let i = 0; i < limit; i++) { step(i); }");
        assert!(s.contains("(ForClassic (Init (Assign (NameStore i) (Num 0)))"), "{s}");
        assert!(s.contains("(Cond (Compare (NameLoad i) < (NameLoad limit)))"), "{s}");
    }

    #[test]
    fn try_catch() {
        let s = in_fn("try { run(); } catch (err) { log(err); } finally { done(); }");
        assert!(s.contains("(Handler (NameStore err) (Body"), "{s}");
        assert!(s.contains("(Finally"), "{s}");
    }

    #[test]
    fn catch_without_binding() {
        let s = in_fn("try { run(); } catch { recover(); }");
        assert!(s.contains("(Handler (Body"), "{s}");
    }

    #[test]
    fn new_object() {
        let s = sexp("const server = new HttpServer(port);");
        assert!(s.contains("(New (TypeRef HttpServer) (NameLoad port))"), "{s}");
    }

    #[test]
    fn template_literal_is_a_string() {
        let s = sexp("const msg = `hello ${name}`;");
        assert!(s.contains("(Assign (NameStore msg) (Str"), "{s}");
    }

    #[test]
    fn strict_equality_is_compare() {
        let s = sexp("const same = a === b;");
        assert!(s.contains("(Compare (NameLoad a) === (NameLoad b))"), "{s}");
    }

    #[test]
    fn object_and_array_literals() {
        let s = sexp("const cfg = {port: 80, host};");
        assert!(s.contains("(DictLit (Str port) (Num 80) (Str host) (NameLoad host))"), "{s}");
        let s = sexp("const xs = [1, 2];");
        assert!(s.contains("(ListLit (Num 1) (Num 2))"), "{s}");
    }

    #[test]
    fn imports() {
        let s = sexp("import fs from 'fs';\nimport {join, resolve as rp} from 'path';");
        assert!(s.contains("(ImportFrom (Str fs) (NameStore fs))"), "{s}");
        assert!(s.contains("(NameStore join)"), "{s}");
        assert!(s.contains("(NameStore rp)"), "{s}");
    }

    #[test]
    fn exports_unwrap_declarations() {
        let s = sexp("export function helper(x) { return x; }\nexport const LIMIT = 10;");
        assert!(s.contains("(FunctionDef (NameStore helper)"), "{s}");
        assert!(s.contains("(Assign (NameStore LIMIT) (Num 10))"), "{s}");
    }

    #[test]
    fn export_default_expression() {
        let s = sexp("export default new App();");
        assert!(s.contains("(ExprStmt (New (TypeRef App)))"), "{s}");
    }

    #[test]
    fn destructuring_declarations() {
        let s = sexp("const {width, height} = box;");
        assert!(
            s.contains("(Assign (TupleLit (NameStore width) (NameStore height)) (NameLoad box))"),
            "{s}"
        );
        let s = sexp("const [first, second] = pair;");
        assert!(
            s.contains("(Assign (TupleLit (NameStore first) (NameStore second)) (NameLoad pair))"),
            "{s}"
        );
    }

    #[test]
    fn typescript_annotations_become_typerefs() {
        let s = sexp("function area(width: number, height: number): number { return width * height; }");
        assert!(s.contains("(Param (TypeRef number) (NameParam width))"), "{s}");
        let s = sexp("let total: number = 0;");
        assert!(s.contains("(Assign (NameStore total) (TypeRef number) (Num 0))"), "{s}");
    }

    #[test]
    fn typescript_type_declarations_are_dropped() {
        let s = sexp("interface Shape { area(): number; }\ntype Id = string;\nlet x = 1;");
        assert!(s.contains("(Assign (NameStore x) (Num 1))"), "{s}");
        assert!(!s.contains("Shape"), "{s}");
    }

    #[test]
    fn ts_as_cast() {
        let s = sexp("const n = value as number;");
        assert!(s.contains("(Cast (TypeRef number) (NameLoad value))"), "{s}");
    }

    #[test]
    fn optional_chaining_is_attribute_access() {
        let s = sexp("const v = config?.server?.port;");
        assert!(
            s.contains("(AttributeLoad (AttributeLoad (NameLoad config) (Attr server)) (Attr port))"),
            "{s}"
        );
    }

    #[test]
    fn spread_and_rest() {
        let s = sexp("merge(...parts);");
        assert!(s.contains("(Starred (NameLoad parts))"), "{s}");
        let s = sexp("function gather(...items) { return items; }");
        assert!(s.contains("(StarParam (NameParam items))"), "{s}");
    }

    #[test]
    fn switch_statement() {
        let s = in_fn("switch (kind) { case 1: a(); break; default: b(); }");
        assert!(s.contains("Switch"), "{s}");
        assert!(s.contains("(Case (Num 1)"), "{s}");
    }

    #[test]
    fn do_while_and_labels() {
        let s = in_fn("outer: do { step(); } while (more);");
        assert!(s.contains("DoWhile"), "{s}");
    }

    #[test]
    fn async_await() {
        let s = sexp("async function load(url) { const data = await fetch(url); return data; }");
        assert!(s.contains("(FunctionDef (NameStore load)"), "{s}");
        assert!(s.contains("(UnaryOp await (Call (NameLoad fetch) (NameLoad url)))"), "{s}");
    }

    #[test]
    fn function_expression_is_lambda() {
        let s = sexp("emitter.on('data', function (chunk) { push(chunk); });");
        assert!(s.contains("(Lambda (Params (Param (NameParam chunk)))"), "{s}");
    }

    #[test]
    fn nullish_coalescing() {
        let s = sexp("const port = env.PORT ?? 3000;");
        assert!(s.contains("(BoolOp"), "{s}");
        assert!(s.contains("??"), "{s}");
    }

    #[test]
    fn regex_literal_is_a_string_atom() {
        let s = sexp("const re = /ab+c/gi;");
        assert!(s.contains("(Assign (NameStore re) (Str"), "{s}");
    }

    #[test]
    fn parse_error_reported() {
        assert!(parse("function f( { }").is_err());
        assert!(parse("const = 1;").is_err());
    }

    #[test]
    fn line_numbers_recorded() {
        let ast = parse("let a = 1;\nlet b = 2;\n").unwrap();
        let s = ast.to_sexp(ast.root());
        assert!(s.contains("NameStore"), "{s}");
    }
}
