//! The [`Language`] trait and the single registry of supported frontends.
//!
//! Everything the pipeline needs to know about a concrete language lives
//! behind one trait object registered here: how to parse it, which file
//! extensions it owns, the naming conventions its identifiers follow, how
//! its methods bind the receiver object, and the *stable* tags that key the
//! content-digest and binary model/cache formats. Downstream crates dispatch
//! through [`spec`] (or the convenience methods on [`Lang`]) instead of
//! matching on the enum, so adding a language is a leaf change: implement
//! the trait, add the variant, register it in [`REGISTRY`] — no other
//! dispatch site in the workspace changes.
//!
//! # Stability contract
//!
//! [`Language::digest_tag`] and [`Language::model_tag`] are part of the
//! on-disk cache and model formats (DESIGN.md §8, §12). They are assigned
//! once, never reused, and never renumbered; `registry_tags_are_stable` and
//! `registry_tags_never_collide` below pin them. Renumbering a tag would
//! silently invalidate (or worse, mis-match) every existing cache entry.

use crate::ast::Ast;
use crate::source::{Lang, ParseError};
use crate::subtoken;
use crate::{java, js, python};
use std::path::Path;

/// How a language binds the receiver object inside a method body.
///
/// The AST+ origin analysis (`namer-analysis`) needs to know which variable
/// denotes "the current instance" so that `self.x` / `this.x` resolve to the
/// enclosing class's canonical origin.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReceiverStyle {
    /// `this` (and `super`) are implicitly in scope inside instance methods
    /// (Java, JavaScript).
    ImplicitThis,
    /// The first formal parameter of a method is the receiver (Python's
    /// `self`).
    FirstParamReceiver,
}

/// One identifier naming convention a language conventionally uses.
///
/// The table returned by [`Language::conventions`] documents which styles a
/// frontend's identifiers follow; the subtoken splitter
/// ([`subtoken::split`]) handles the union of all of them, so the table is
/// the contract a new frontend checks its corpus against (and what docs and
/// capability listings report), not a switch the splitter branches on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Convention {
    /// `snake_case`.
    SnakeCase,
    /// `camelCase`.
    CamelCase,
    /// `PascalCase` (types, classes).
    PascalCase,
    /// `SCREAMING_SNAKE` (constants).
    ScreamingSnake,
}

/// Everything the pipeline knows about one concrete language.
///
/// Implementations are zero-sized and registered in [`REGISTRY`]; the rest
/// of the workspace reaches them through [`spec`] / the [`Lang`] helpers.
pub trait Language: Sync {
    /// The cheap `Copy` handle for this language.
    fn lang(&self) -> Lang;

    /// Human-readable name (`"Python"`, `"JavaScript"`), used in
    /// diagnostics and `Display`.
    fn name(&self) -> &'static str;

    /// Canonical lowercase CLI name (`--lang` value, serve capability
    /// listing).
    fn cli_name(&self) -> &'static str;

    /// Accepted `--lang` spellings, including [`Self::cli_name`].
    fn aliases(&self) -> &'static [&'static str];

    /// File extensions this frontend owns (no dots). The first entry is the
    /// canonical one used when synthesising file names.
    fn extensions(&self) -> &'static [&'static str];

    /// Canonical file extension (`"py"`, `"java"`, `"js"`).
    fn primary_extension(&self) -> &'static str {
        self.extensions()[0]
    }

    /// Stable one-byte tag mixed into [`content
    /// digests`](crate::digest::content_digest). Part of the on-disk cache
    /// format: assigned once, never renumbered.
    fn digest_tag(&self) -> u8;

    /// Stable tag carried by the binary model/cache container (DESIGN.md
    /// §12). Part of the on-disk model format: assigned once, never
    /// renumbered.
    fn model_tag(&self) -> u32 {
        u32::from(self.digest_tag())
    }

    /// How method bodies bind the receiver object.
    fn receiver_style(&self) -> ReceiverStyle;

    /// The naming conventions this language's identifiers follow.
    fn conventions(&self) -> &'static [Convention];

    /// Splits an identifier into subtokens. The default handles the union
    /// of all [`Convention`]s; a frontend with exotic rules can override.
    fn split_name(&self, name: &str) -> Vec<String> {
        subtoken::split(name)
    }

    /// Parses source text into a shared-vocabulary AST.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] when the text does not lex or parse.
    fn parse(&self, text: &str) -> Result<Ast, ParseError>;
}

struct PythonLang;

impl Language for PythonLang {
    fn lang(&self) -> Lang {
        Lang::Python
    }
    fn name(&self) -> &'static str {
        "Python"
    }
    fn cli_name(&self) -> &'static str {
        "python"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["python", "py"]
    }
    fn extensions(&self) -> &'static [&'static str] {
        &["py"]
    }
    fn digest_tag(&self) -> u8 {
        0
    }
    fn receiver_style(&self) -> ReceiverStyle {
        ReceiverStyle::FirstParamReceiver
    }
    fn conventions(&self) -> &'static [Convention] {
        &[
            Convention::SnakeCase,
            Convention::PascalCase,
            Convention::ScreamingSnake,
        ]
    }
    fn parse(&self, text: &str) -> Result<Ast, ParseError> {
        python::parse(text)
    }
}

struct JavaLang;

impl Language for JavaLang {
    fn lang(&self) -> Lang {
        Lang::Java
    }
    fn name(&self) -> &'static str {
        "Java"
    }
    fn cli_name(&self) -> &'static str {
        "java"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["java"]
    }
    fn extensions(&self) -> &'static [&'static str] {
        &["java"]
    }
    fn digest_tag(&self) -> u8 {
        1
    }
    fn receiver_style(&self) -> ReceiverStyle {
        ReceiverStyle::ImplicitThis
    }
    fn conventions(&self) -> &'static [Convention] {
        &[
            Convention::CamelCase,
            Convention::PascalCase,
            Convention::ScreamingSnake,
        ]
    }
    fn parse(&self, text: &str) -> Result<Ast, ParseError> {
        java::parse(text)
    }
}

struct JsLang;

impl Language for JsLang {
    fn lang(&self) -> Lang {
        Lang::Js
    }
    fn name(&self) -> &'static str {
        "JavaScript"
    }
    fn cli_name(&self) -> &'static str {
        "javascript"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["javascript", "js", "typescript", "ts"]
    }
    fn extensions(&self) -> &'static [&'static str] {
        &["js", "mjs", "cjs", "jsx", "ts", "tsx"]
    }
    fn digest_tag(&self) -> u8 {
        2
    }
    fn receiver_style(&self) -> ReceiverStyle {
        ReceiverStyle::ImplicitThis
    }
    fn conventions(&self) -> &'static [Convention] {
        &[
            Convention::CamelCase,
            Convention::PascalCase,
            Convention::ScreamingSnake,
        ]
    }
    fn parse(&self, text: &str) -> Result<Ast, ParseError> {
        js::parse(text)
    }
}

/// The single registration point for every supported language.
///
/// Order matters only for listings ([`all`], serve's
/// `capabilities.languages`): it is the order languages shipped in.
pub static REGISTRY: [&dyn Language; 3] = [&PythonLang, &JavaLang, &JsLang];

/// All registered languages, in registration order.
pub fn all() -> &'static [&'static dyn Language] {
    &REGISTRY
}

/// The [`Language`] implementation for `lang`.
///
/// This is the one place in the workspace where the enum is matched for
/// dispatch; everything else goes through the returned trait object.
pub fn spec(lang: Lang) -> &'static dyn Language {
    let found = match lang {
        Lang::Python => REGISTRY[0],
        Lang::Java => REGISTRY[1],
        Lang::Js => REGISTRY[2],
    };
    debug_assert_eq!(found.lang(), lang, "registry order drifted");
    found
}

/// Looks a language up by file extension (no dot, case-insensitive).
pub fn from_extension(ext: &str) -> Option<Lang> {
    all()
        .iter()
        .find(|l| l.extensions().iter().any(|e| ext.eq_ignore_ascii_case(e)))
        .map(|l| l.lang())
}

/// Looks a language up by CLI alias (case-insensitive).
pub fn from_alias(name: &str) -> Option<Lang> {
    all()
        .iter()
        .find(|l| l.aliases().iter().any(|a| name.eq_ignore_ascii_case(a)))
        .map(|l| l.lang())
}

/// Reverses [`Language::model_tag`] when decoding a binary container.
pub fn from_model_tag(tag: u32) -> Option<Lang> {
    all().iter().find(|l| l.model_tag() == tag).map(|l| l.lang())
}

impl Lang {
    /// The registered [`Language`] implementation for this language.
    pub fn spec(self) -> &'static dyn Language {
        spec(self)
    }

    /// Human-readable name from the registry (`"Python"`, `"JavaScript"`).
    pub fn name(self) -> &'static str {
        spec(self).name()
    }

    /// Sniffs the language of a file from its extension; `None` when no
    /// registered frontend owns it. This is the only extension→language
    /// mapping in the workspace.
    ///
    /// # Examples
    ///
    /// ```
    /// use namer_syntax::Lang;
    /// use std::path::Path;
    /// assert_eq!(Lang::from_path(Path::new("a/b.py")), Some(Lang::Python));
    /// assert_eq!(Lang::from_path(Path::new("App.tsx")), Some(Lang::Js));
    /// assert_eq!(Lang::from_path(Path::new("notes.txt")), None);
    /// ```
    pub fn from_path(path: &Path) -> Option<Lang> {
        path.extension()
            .and_then(|e| e.to_str())
            .and_then(from_extension)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// The on-disk formats depend on these exact values; see the module
    /// docs. Never renumber.
    #[test]
    fn registry_tags_are_stable() {
        assert_eq!(spec(Lang::Python).digest_tag(), 0);
        assert_eq!(spec(Lang::Java).digest_tag(), 1);
        assert_eq!(spec(Lang::Js).digest_tag(), 2);
        assert_eq!(spec(Lang::Python).model_tag(), 0);
        assert_eq!(spec(Lang::Java).model_tag(), 1);
        assert_eq!(spec(Lang::Js).model_tag(), 2);
    }

    /// Guard against a new frontend reusing an existing tag, alias, or
    /// extension: every registered value must be unique.
    #[test]
    fn registry_tags_never_collide() {
        let digest_tags: HashSet<u8> = all().iter().map(|l| l.digest_tag()).collect();
        assert_eq!(digest_tags.len(), all().len(), "digest tag collision");
        let model_tags: HashSet<u32> = all().iter().map(|l| l.model_tag()).collect();
        assert_eq!(model_tags.len(), all().len(), "model tag collision");
        let mut exts = HashSet::new();
        let mut aliases = HashSet::new();
        for l in all() {
            for e in l.extensions() {
                assert!(exts.insert(*e), "extension {e:?} registered twice");
            }
            for a in l.aliases() {
                assert!(aliases.insert(*a), "alias {a:?} registered twice");
            }
        }
    }

    #[test]
    fn spec_round_trips() {
        for l in all() {
            assert_eq!(spec(l.lang()).lang(), l.lang());
            assert_eq!(from_alias(l.cli_name()), Some(l.lang()));
            assert_eq!(from_extension(l.primary_extension()), Some(l.lang()));
            assert_eq!(from_model_tag(l.model_tag()), Some(l.lang()));
        }
    }

    #[test]
    fn from_path_sniffs_registered_extensions() {
        assert_eq!(Lang::from_path(Path::new("x/y/a.py")), Some(Lang::Python));
        assert_eq!(Lang::from_path(Path::new("A.java")), Some(Lang::Java));
        for ext in ["js", "mjs", "cjs", "jsx", "ts", "tsx"] {
            assert_eq!(
                Lang::from_path(Path::new(&format!("m.{ext}"))),
                Some(Lang::Js),
                "{ext}"
            );
        }
        assert_eq!(Lang::from_path(Path::new("no_extension")), None);
        assert_eq!(Lang::from_path(Path::new("a.rs")), None);
    }

    #[test]
    fn aliases_cover_cli_spellings() {
        assert_eq!(from_alias("python"), Some(Lang::Python));
        assert_eq!(from_alias("PY"), Some(Lang::Python));
        assert_eq!(from_alias("java"), Some(Lang::Java));
        for a in ["js", "javascript", "ts", "typescript"] {
            assert_eq!(from_alias(a), Some(Lang::Js), "{a}");
        }
        assert_eq!(from_alias("cobol"), None);
    }

    #[test]
    fn names_and_conventions_registered() {
        assert_eq!(Lang::Python.name(), "Python");
        assert_eq!(Lang::Java.name(), "Java");
        assert_eq!(Lang::Js.name(), "JavaScript");
        assert!(spec(Lang::Js)
            .conventions()
            .contains(&Convention::CamelCase));
        assert!(spec(Lang::Python)
            .conventions()
            .contains(&Convention::SnakeCase));
        assert_eq!(
            spec(Lang::Js).split_name("requestCount"),
            vec!["request".to_owned(), "Count".to_owned()]
        );
    }

    #[test]
    fn receiver_styles() {
        assert_eq!(
            spec(Lang::Python).receiver_style(),
            ReceiverStyle::FirstParamReceiver
        );
        assert_eq!(
            spec(Lang::Java).receiver_style(),
            ReceiverStyle::ImplicitThis
        );
        assert_eq!(spec(Lang::Js).receiver_style(), ReceiverStyle::ImplicitThis);
    }

    #[test]
    fn every_language_parses_a_hello_file() {
        for l in all() {
            let src = match l.lang() {
                Lang::Python => "x = 1\n",
                Lang::Java => "class A { int x = 1; }",
                Lang::Js => "let x = 1;\n",
            };
            assert!(l.parse(src).is_ok(), "{} failed to parse", l.name());
        }
    }
}
