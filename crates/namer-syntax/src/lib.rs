//! Parsing and program abstraction substrate for the Namer reproduction.
//!
//! This crate implements §3.1 of *“Learning to Find Naming Issues with Big
//! Code and Small Supervision”* (PLDI 2021):
//!
//! * statement-level [ASTs](ast::Ast) for Python ([`python`]), Java
//!   ([`java`]), and JavaScript/TypeScript ([`js`]), each registered behind
//!   the [`lang::Language`] trait;
//! * [subtoken splitting](subtoken) by naming convention;
//! * the **AST+** [transformation](transform) (literal abstraction,
//!   `NumArgs(k)`, `NumST(k)`, origin decoration);
//! * [statement extraction](stmt) projecting file trees onto statements;
//! * [name paths](namepath) — the path abstraction patterns are built from.
//!
//! # Examples
//!
//! ```
//! use namer_syntax::{python, stmt, transform, namepath};
//!
//! let ast = python::parse("self.assertTrue(picture.rotate_angle, 90)\n")?;
//! let statements = stmt::extract(&ast);
//! let plus = transform::to_ast_plus(&statements[0].ast, &transform::Origins::default());
//! let paths = namepath::extract(&plus, 10);
//! assert!(paths.iter().any(|p| p.end_str() == Some("True")));
//! # Ok::<(), namer_syntax::ParseError>(())
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod digest;
mod intern;
pub mod java;
pub mod js;
pub mod lang;
pub mod namepath;
pub mod python;
pub mod source;
pub mod stmt;
pub mod subtoken;
pub mod transform;
pub mod vocab;

pub use ast::{Ast, NameRole, NodeId, TermKind};
pub use digest::{content_digest, ContentDigest, Fnv64};
pub use intern::{PrefixId, Sym};
pub use lang::{Convention, Language, ReceiverStyle};
pub use source::{Lang, ParseError, SourceFile};

/// Parses a [`SourceFile`] with the registered frontend for its language.
///
/// Dispatch goes through the [`lang`] registry — the single place languages
/// are wired up — and the error carries the registry's language name so
/// quarantine diagnostics stay accurate for every frontend.
///
/// # Errors
///
/// Returns [`ParseError`] when the file does not lex or parse.
pub fn parse_file(file: &SourceFile) -> Result<Ast, ParseError> {
    let spec = lang::spec(file.lang);
    spec.parse(&file.text).map_err(|e| e.with_lang(spec.name()))
}
