//! Name paths (Definitions 3.2–3.4 of the paper).
//!
//! A name path `⟨S, n⟩` records the route from an AST+ root to one leaf
//! subtoken: `S` is the list of `(non-terminal value, child index)` pairs and
//! `n` is the end node — either a concrete subtoken or the symbolic `ϵ` used
//! by pattern deductions.

use crate::ast::{Ast, NodeId};
use crate::intern::{PrefixId, Sym};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A name path `⟨S, n⟩`.
///
/// `end == None` encodes the symbolic node `ϵ` (Definition 3.2), which any
/// concrete end node equals under the `=` operator (Definition 3.4).
///
/// The derived `Ord` gives the canonical item order used when FP-tree
/// transactions are sorted.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct NamePath {
    /// The prefix `S`: `(value of nj, index ij)` pairs from the root down.
    pub prefix: Vec<(Sym, u32)>,
    /// The end node `n`: a concrete subtoken, or `None` for `ϵ`.
    pub end: Option<Sym>,
}

impl NamePath {
    /// Creates a concrete name path.
    pub fn concrete(prefix: Vec<(Sym, u32)>, end: Sym) -> NamePath {
        NamePath {
            prefix,
            end: Some(end),
        }
    }

    /// Creates a symbolic name path (`n = ϵ`).
    pub fn symbolic(prefix: Vec<(Sym, u32)>) -> NamePath {
        NamePath { prefix, end: None }
    }

    /// Returns this path with its end node replaced by `ϵ`.
    pub fn to_symbolic(&self) -> NamePath {
        NamePath {
            prefix: self.prefix.clone(),
            end: None,
        }
    }

    /// `true` if the end node is concrete.
    pub fn is_concrete(&self) -> bool {
        self.end.is_some()
    }

    /// The end subtoken as a string, if concrete.
    pub fn end_str(&self) -> Option<&'static str> {
        self.end.map(Sym::as_str)
    }

    /// The `∼` operator: do the prefixes coincide? (Definition 3.4.)
    pub fn same_prefix(&self, other: &NamePath) -> bool {
        self.prefix == other.prefix
    }

    /// The `=` operator: `∼` and the end nodes are equal or either is `ϵ`.
    /// (Definition 3.4.)
    pub fn path_eq(&self, other: &NamePath) -> bool {
        self.same_prefix(other)
            && match (self.end, other.end) {
                (None, _) | (_, None) => true,
                (Some(a), Some(b)) => a == b,
            }
    }

    /// The interned id of this path's prefix `S` (see [`PrefixId`]).
    ///
    /// Two paths share a `prefix_id` iff [`NamePath::same_prefix`] holds.
    pub fn prefix_id(&self) -> PrefixId {
        PrefixId::intern(&self.prefix)
    }

    /// The value of the last prefix element, if any.
    ///
    /// For decorated paths this is the origin node; otherwise the `NumST(k)`
    /// wrapper. Useful for quick classification of what a path talks about.
    pub fn last_prefix_value(&self) -> Option<Sym> {
        self.prefix.last().map(|&(v, _)| v)
    }
}

impl fmt::Display for NamePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (v, i) in &self.prefix {
            write!(f, "{v} {i} ")?;
        }
        match self.end {
            Some(e) => write!(f, "{e}"),
            None => write!(f, "ϵ"),
        }
    }
}

/// Extracts the name paths of an AST+ tree, top-down, keeping at most
/// `limit` paths (the paper keeps the first 10 — §5.1).
///
/// Only leaves that are *subtokens* (terminals reached through a `NumST(k)`
/// node, possibly via an origin node) produce paths; operator terminals do
/// not, since the paper's paths end in "leaf subtokens".
///
/// # Examples
///
/// ```
/// use namer_syntax::{python, stmt, transform, namepath};
/// let file = python::parse("self.assertTrue(x, 90)\n")?;
/// let s = &stmt::extract(&file)[0];
/// let plus = transform::to_ast_plus(&s.ast, &transform::Origins::new());
/// let paths = namepath::extract(&plus, 10);
/// let rendered: Vec<String> = paths.iter().map(|p| p.to_string()).collect();
/// assert!(rendered.iter().any(|p| p.ends_with("NumST(2) 1 True")), "{rendered:?}");
/// # Ok::<(), namer_syntax::ParseError>(())
/// ```
pub fn extract(plus: &Ast, limit: usize) -> Vec<NamePath> {
    let mut out = Vec::new();
    let root = match plus.try_root() {
        Some(r) => r,
        None => return out,
    };
    let mut prefix: Vec<(Sym, u32)> = Vec::new();
    walk(plus, root, &mut prefix, &mut out, limit);
    out
}

/// Extracts paths together with the terminal node each one ends at.
///
/// The pipeline uses the node handles to relate violations back to source
/// locations and to the original (pre-transformation) names.
pub fn extract_with_nodes(plus: &Ast, limit: usize) -> Vec<(NamePath, NodeId)> {
    let mut paths = Vec::new();
    let root = match plus.try_root() {
        Some(r) => r,
        None => return paths,
    };
    let mut prefix = Vec::new();
    walk_nodes(plus, root, &mut prefix, &mut paths, limit);
    paths
}

fn is_subtoken_leaf(plus: &Ast, prefix: &[(Sym, u32)]) -> bool {
    // The leaf is a subtoken iff some enclosing wrapper on the path is a
    // NumST(k) node: either the direct parent, or the grandparent when an
    // origin node is interposed.
    let _ = plus;
    let n = prefix.len();
    let is_num_st = |v: Sym| v.as_str().starts_with("NumST(");
    if n >= 1 && is_num_st(prefix[n - 1].0) {
        return true;
    }
    n >= 2 && is_num_st(prefix[n - 2].0)
}

fn walk(
    plus: &Ast,
    id: NodeId,
    prefix: &mut Vec<(Sym, u32)>,
    out: &mut Vec<NamePath>,
    limit: usize,
) {
    if out.len() >= limit {
        return;
    }
    if plus.is_terminal(id) {
        if is_subtoken_leaf(plus, prefix) {
            out.push(NamePath::concrete(prefix.clone(), plus.value(id)));
        }
        return;
    }
    let value = plus.value(id);
    for (i, &c) in plus.children(id).iter().enumerate() {
        prefix.push((value, i as u32));
        walk(plus, c, prefix, out, limit);
        prefix.pop();
        if out.len() >= limit {
            return;
        }
    }
}

fn walk_nodes(
    plus: &Ast,
    id: NodeId,
    prefix: &mut Vec<(Sym, u32)>,
    out: &mut Vec<(NamePath, NodeId)>,
    limit: usize,
) {
    if out.len() >= limit {
        return;
    }
    if plus.is_terminal(id) {
        if is_subtoken_leaf(plus, prefix) {
            out.push((NamePath::concrete(prefix.clone(), plus.value(id)), id));
        }
        return;
    }
    let value = plus.value(id);
    for (i, &c) in plus.children(id).iter().enumerate() {
        prefix.push((value, i as u32));
        walk_nodes(plus, c, prefix, out, limit);
        prefix.pop();
        if out.len() >= limit {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{python, stmt, transform};

    fn paths_of(src: &str) -> Vec<NamePath> {
        let file = python::parse(src).unwrap();
        let s = &stmt::extract(&file)[0];
        let plus = transform::to_ast_plus(&s.ast, &transform::Origins::new());
        extract(&plus, 10)
    }

    #[test]
    fn figure2d_paths() {
        let rendered: Vec<String> = paths_of("self.assertTrue(picture.rotate_angle, 90)\n")
            .iter()
            .map(|p| p.to_string())
            .collect();
        assert!(rendered.contains(
            &"ExprStmt 0 NumArgs(2) 0 Call 0 AttributeLoad 0 NameLoad 0 NumST(1) 0 self"
                .to_owned()
        ), "{rendered:?}");
        assert!(rendered.contains(
            &"ExprStmt 0 NumArgs(2) 0 Call 0 AttributeLoad 1 Attr 0 NumST(2) 0 assert".to_owned()
        ), "{rendered:?}");
        assert!(rendered.contains(
            &"ExprStmt 0 NumArgs(2) 0 Call 0 AttributeLoad 1 Attr 0 NumST(2) 1 True".to_owned()
        ), "{rendered:?}");
        assert!(rendered.contains(
            &"ExprStmt 0 NumArgs(2) 0 Call 2 Num 0 NumST(1) 0 NUM".to_owned()
        ), "{rendered:?}");
    }

    #[test]
    fn all_extracted_paths_are_concrete_with_distinct_prefixes() {
        let paths = paths_of("self.sz = N.array(sz)\n");
        assert!(paths.iter().all(NamePath::is_concrete));
        for i in 0..paths.len() {
            for j in (i + 1)..paths.len() {
                assert!(!paths[i].same_prefix(&paths[j]), "duplicate prefix");
            }
        }
    }

    #[test]
    fn limit_is_respected() {
        let file = python::parse("f(a, b, c, d, e, g, h, i, j, k, l, m)\n").unwrap();
        let s = &stmt::extract(&file)[0];
        let plus = transform::to_ast_plus(&s.ast, &transform::Origins::new());
        assert_eq!(extract(&plus, 5).len(), 5);
    }

    #[test]
    fn relational_operators_example_3_5() {
        let paths = paths_of("self.assertTrue(x, 90)\n");
        let np1 = paths
            .iter()
            .find(|p| p.end_str() == Some("True"))
            .unwrap()
            .clone();
        let mut np2 = np1.clone();
        np2.end = Some(Sym::intern("Equal"));
        let np3 = np1.to_symbolic();
        assert!(np1.same_prefix(&np2));
        assert!(!np1.path_eq(&np2));
        assert!(np1.same_prefix(&np3));
        assert!(np1.path_eq(&np3));
    }

    #[test]
    fn symbolic_display_uses_epsilon() {
        let p = NamePath::symbolic(vec![(Sym::intern("Assign"), 0)]);
        assert_eq!(p.to_string(), "Assign 0 ϵ");
    }

    #[test]
    fn operator_terminals_do_not_produce_paths() {
        let paths = paths_of("total += 1\n");
        assert!(paths.iter().all(|p| p.end_str() != Some("+=")), "{paths:?}");
    }

    #[test]
    fn extract_with_nodes_agrees_with_extract() {
        let file = python::parse("self.run(x)\n").unwrap();
        let s = &stmt::extract(&file)[0];
        let plus = transform::to_ast_plus(&s.ast, &transform::Origins::new());
        let a = extract(&plus, 10);
        let b = extract_with_nodes(&plus, 10);
        assert_eq!(a.len(), b.len());
        for (pa, (pb, node)) in a.iter().zip(&b) {
            assert_eq!(pa, pb);
            assert_eq!(plus.value(*node), pa.end.unwrap());
        }
    }

    #[test]
    fn prefix_id_agrees_with_same_prefix() {
        let paths = paths_of("self.assertTrue(picture.rotate_angle, 90)\n");
        for a in &paths {
            for b in &paths {
                assert_eq!(a.same_prefix(b), a.prefix_id() == b.prefix_id());
            }
            // Symbolising keeps the prefix, hence the id.
            assert_eq!(a.prefix_id(), a.to_symbolic().prefix_id());
        }
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let mut paths = paths_of("self.assertTrue(picture.rotate_angle, 90)\n");
        let orig = paths.clone();
        paths.sort();
        paths.sort();
        assert_eq!(paths.len(), orig.len());
    }
}
