//! Indentation-aware Python lexer.

use crate::source::ParseError;

/// One Python token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (keywords are distinguished by the parser).
    Name(String),
    /// Numeric literal (spelling preserved).
    Number(String),
    /// String literal (contents, quotes stripped).
    Str(String),
    /// Operator or punctuation.
    Op(&'static str),
    /// Logical end of line.
    Newline,
    /// Indentation increased.
    Indent,
    /// Indentation decreased.
    Dedent,
    /// End of input.
    Eof,
}

/// A token with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based line number.
    pub line: u32,
}

const OPERATORS: &[&str] = &[
    "**=", "//=", ">>=", "<<=", "...", "==", "!=", "<=", ">=", "->", "+=", "-=", "*=", "/=", "%=",
    "&=", "|=", "^=", "**", "//", "<<", ">>", ":=", "(", ")", "[", "]", "{", "}", ",", ":", ".",
    ";", "@", "=", "+", "-", "*", "/", "%", "&", "|", "^", "~", "<", ">",
];

/// Tokenises Python source, emitting `Indent`/`Dedent` pairs.
///
/// # Errors
///
/// Returns [`ParseError`] on inconsistent dedents, unterminated strings, or
/// characters outside the supported lexical grammar.
pub fn lex(src: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut out = Vec::new();
    let mut indents: Vec<usize> = vec![0];
    let mut paren_depth = 0usize;
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line: u32 = 1;
    let mut at_line_start = true;

    while i < bytes.len() {
        if at_line_start && paren_depth == 0 {
            // Measure indentation; skip blank / comment-only lines entirely.
            let mut width = 0usize;
            let mut j = i;
            while j < bytes.len() && (bytes[j] == ' ' || bytes[j] == '\t') {
                width += if bytes[j] == '\t' { 8 } else { 1 };
                j += 1;
            }
            if j >= bytes.len() {
                break;
            }
            if bytes[j] == '\n' {
                i = j + 1;
                line += 1;
                continue;
            }
            if bytes[j] == '#' {
                while j < bytes.len() && bytes[j] != '\n' {
                    j += 1;
                }
                i = j;
                continue;
            }
            let current = *indents.last().expect("indent stack never empty");
            if width > current {
                indents.push(width);
                out.push(Spanned {
                    tok: Tok::Indent,
                    line,
                });
            } else {
                while width < *indents.last().expect("indent stack never empty") {
                    indents.pop();
                    out.push(Spanned {
                        tok: Tok::Dedent,
                        line,
                    });
                }
                if width != *indents.last().expect("indent stack never empty") {
                    return Err(ParseError::new(line, "inconsistent dedent"));
                }
            }
            i = j;
            at_line_start = false;
            continue;
        }

        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
                if paren_depth == 0 {
                    if !matches!(out.last().map(|s| &s.tok), Some(Tok::Newline) | None) {
                        out.push(Spanned {
                            tok: Tok::Newline,
                            line: line - 1,
                        });
                    }
                    at_line_start = true;
                }
            }
            ' ' | '\t' | '\r' => i += 1,
            '#' => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '\\' if i + 1 < bytes.len() && bytes[i + 1] == '\n' => {
                line += 1;
                i += 2;
            }
            '\'' | '"' => {
                let (s, consumed, newlines) = lex_string(&bytes[i..], line)?;
                out.push(Spanned {
                    tok: Tok::Str(s),
                    line,
                });
                i += consumed;
                line += newlines;
            }
            _ if c.is_ascii_digit() || (c == '.' && peek_digit(&bytes, i + 1)) => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric()
                        || bytes[i] == '.'
                        || bytes[i] == '_'
                        || ((bytes[i] == '+' || bytes[i] == '-')
                            && matches!(bytes.get(i - 1), Some('e') | Some('E'))))
                {
                    // Stop a trailing dot that starts an attribute access on a
                    // method call like `1 .foo` — not valid in our subset, so
                    // a simple greedy scan is fine, but avoid swallowing `..`.
                    if bytes[i] == '.' && matches!(bytes.get(i + 1), Some('.')) {
                        break;
                    }
                    i += 1;
                }
                out.push(Spanned {
                    tok: Tok::Number(bytes[start..i].iter().collect()),
                    line,
                });
            }
            _ if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let word: String = bytes[start..i].iter().collect();
                // String prefixes: r"", b"", f"", u"" and combinations.
                if word.len() <= 2
                    && word.chars().all(|ch| "rbfuRBFU".contains(ch))
                    && i < bytes.len()
                    && (bytes[i] == '"' || bytes[i] == '\'')
                {
                    let (s, consumed, newlines) = lex_string(&bytes[i..], line)?;
                    out.push(Spanned {
                        tok: Tok::Str(s),
                        line,
                    });
                    i += consumed;
                    line += newlines;
                } else {
                    out.push(Spanned {
                        tok: Tok::Name(word),
                        line,
                    });
                }
            }
            _ => {
                let rest: String = bytes[i..bytes.len().min(i + 3)].iter().collect();
                let op = OPERATORS
                    .iter()
                    .find(|&&op| rest.starts_with(op))
                    .copied()
                    .ok_or_else(|| ParseError::new(line, format!("unexpected character {c:?}")))?;
                match op {
                    "(" | "[" | "{" => paren_depth += 1,
                    ")" | "]" | "}" => paren_depth = paren_depth.saturating_sub(1),
                    _ => {}
                }
                out.push(Spanned {
                    tok: Tok::Op(op),
                    line,
                });
                i += op.len();
            }
        }
    }
    while indents.len() > 1 {
        indents.pop();
        out.push(Spanned {
            tok: Tok::Dedent,
            line,
        });
    }
    out.push(Spanned {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

fn peek_digit(bytes: &[char], i: usize) -> bool {
    bytes.get(i).is_some_and(|c| c.is_ascii_digit())
}

/// Lexes a string starting at `src[0]` (a quote). Returns (contents,
/// chars consumed, newlines crossed).
fn lex_string(src: &[char], line: u32) -> Result<(String, usize, u32), ParseError> {
    let quote = src[0];
    let triple = src.len() >= 3 && src[1] == quote && src[2] == quote;
    let (open, close_len) = if triple { (3, 3) } else { (1, 1) };
    let mut i = open;
    let mut s = String::new();
    let mut newlines = 0;
    while i < src.len() {
        if src[i] == '\\' && i + 1 < src.len() {
            s.push(src[i]);
            s.push(src[i + 1]);
            if src[i + 1] == '\n' {
                newlines += 1;
            }
            i += 2;
            continue;
        }
        let closed = if triple {
            src[i] == quote && src.get(i + 1) == Some(&quote) && src.get(i + 2) == Some(&quote)
        } else {
            src[i] == quote
        };
        if closed {
            return Ok((s, i + close_len, newlines));
        }
        if src[i] == '\n' {
            if !triple {
                return Err(ParseError::new(line, "unterminated string literal"));
            }
            newlines += 1;
        }
        s.push(src[i]);
        i += 1;
    }
    Err(ParseError::new(line, "unterminated string literal"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn simple_assignment() {
        assert_eq!(
            toks("x = 1\n"),
            vec![
                Tok::Name("x".into()),
                Tok::Op("="),
                Tok::Number("1".into()),
                Tok::Newline,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn indentation_blocks() {
        let t = toks("if x:\n    y = 2\nz = 3\n");
        assert!(t.contains(&Tok::Indent));
        assert!(t.contains(&Tok::Dedent));
    }

    #[test]
    fn nested_dedents_unwind() {
        let t = toks("if a:\n  if b:\n    c = 1\n");
        let dedents = t.iter().filter(|t| matches!(t, Tok::Dedent)).count();
        assert_eq!(dedents, 2);
    }

    #[test]
    fn comments_are_skipped() {
        let t = toks("# header\nx = 1  # trailing\n");
        assert!(!t
            .iter()
            .any(|t| matches!(t, Tok::Name(n) if n.contains("header"))));
        assert_eq!(t.iter().filter(|t| matches!(t, Tok::Name(_))).count(), 1);
    }

    #[test]
    fn strings_with_prefixes() {
        assert_eq!(
            toks("s = r\"raw\"\n")[2],
            Tok::Str("raw".into()),
            "raw strings keep contents"
        );
        assert!(matches!(&toks("s = '''multi\nline'''\n")[2], Tok::Str(s) if s.contains('\n')));
    }

    #[test]
    fn newlines_suppressed_in_brackets() {
        let t = toks("f(a,\n  b)\n");
        let newlines = t.iter().filter(|t| matches!(t, Tok::Newline)).count();
        assert_eq!(newlines, 1);
    }

    #[test]
    fn inconsistent_dedent_is_an_error() {
        assert!(lex("if a:\n    x = 1\n  y = 2\n").is_err());
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(lex("s = 'oops\n").is_err());
    }

    #[test]
    fn float_and_exponent_numbers() {
        assert_eq!(toks("x = 1.5e-3\n")[2], Tok::Number("1.5e-3".into()));
    }

    #[test]
    fn multi_char_operators() {
        let t = toks("x **= 2\n");
        assert_eq!(t[1], Tok::Op("**="));
    }

    #[test]
    fn line_numbers_advance() {
        let spanned = lex("a = 1\nb = 2\n").unwrap();
        let b = spanned
            .iter()
            .find(|s| s.tok == Tok::Name("b".into()))
            .unwrap();
        assert_eq!(b.line, 2);
    }
}
