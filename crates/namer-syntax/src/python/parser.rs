//! Recursive-descent parser for a broad Python subset.
//!
//! The parser targets the statement and expression forms that dominate real
//! GitHub Python (the paper's dataset): classes, functions, assignments,
//! attribute/method calls, control flow, `with`/`try`, comprehensions,
//! lambdas, and the literal forms. It produces the parsed AST of
//! Figure 2 (b): expressions are wrapped in small non-terminals
//! (`NameLoad`, `AttributeLoad`, `Attr`, `Num`, …) whose leaves are the
//! identifier / literal terminals.

use super::lexer::{lex, Spanned, Tok};
use crate::ast::{Ast, NameRole, NodeId, TermKind};
use crate::source::ParseError;
use crate::vocab;

const KEYWORDS: &[&str] = &[
    "False", "None", "True", "and", "as", "assert", "async", "await", "break", "class",
    "continue", "def", "del", "elif", "else", "except", "finally", "for", "from", "global", "if",
    "import", "in", "is", "lambda", "nonlocal", "not", "or", "pass", "raise", "return", "try",
    "while", "with", "yield",
];

/// Parses Python source into a [`Module`](crate::vocab::module)-rooted AST.
///
/// # Errors
///
/// Returns [`ParseError`] for syntax outside the supported subset.
///
/// # Examples
///
/// ```
/// let ast = namer_syntax::python::parse("self.assertTrue(x, 90)\n")?;
/// let root = ast.root();
/// assert_eq!(ast.value(root).as_str(), "Module");
/// # Ok::<(), namer_syntax::ParseError>(())
/// ```
pub fn parse(src: &str) -> Result<Ast, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        toks: tokens,
        pos: 0,
        ast: Ast::new(),
    };
    let body = p.parse_block_body(true)?;
    p.expect_eof()?;
    let root = p.ast.non_terminal(vocab::module(), body);
    p.ast.set_root(root);
    Ok(p.ast)
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    ast: Ast,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_op(&mut self, op: &str) -> bool {
        if matches!(self.peek(), Tok::Op(o) if *o == op) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_op(&mut self, op: &str) -> Result<(), ParseError> {
        if self.eat_op(op) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("expected {op:?}")))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Name(n) if n == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("expected keyword {kw:?}")))
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Name(n) if n == kw)
    }

    fn expect_name(&mut self) -> Result<(String, u32), ParseError> {
        let line = self.line();
        match self.bump() {
            Tok::Name(n) if !KEYWORDS.contains(&n.as_str()) => Ok((n, line)),
            other => Err(ParseError::new(line, format!("expected name, got {other:?}"))),
        }
    }

    fn unexpected(&self, what: &str) -> ParseError {
        ParseError::new(self.line(), format!("{what}, got {:?}", self.peek()))
    }

    fn eat_newlines(&mut self) {
        while matches!(self.peek(), Tok::Newline) {
            self.bump();
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        self.eat_newlines();
        if matches!(self.peek(), Tok::Eof) {
            Ok(())
        } else {
            Err(self.unexpected("expected end of file"))
        }
    }

    // ----- node helpers -----------------------------------------------------

    fn name_node(&mut self, wrapper: crate::Sym, name: &str, role: NameRole, line: u32) -> NodeId {
        let term = self.ast.terminal(name, TermKind::Ident);
        self.ast.set_role(term, role);
        self.ast.set_line(term, line);
        let node = self.ast.non_terminal(wrapper, vec![term]);
        self.ast.set_line(node, line);
        node
    }

    fn op_term(&mut self, op: &str) -> NodeId {
        self.ast.terminal(op, TermKind::Other)
    }

    // ----- statements -------------------------------------------------------

    /// Parses statements until `Dedent`/`Eof` (or just `Eof` at top level).
    fn parse_block_body(&mut self, top: bool) -> Result<Vec<NodeId>, ParseError> {
        let mut stmts = Vec::new();
        loop {
            self.eat_newlines();
            match self.peek() {
                Tok::Eof => break,
                Tok::Dedent if !top => break,
                Tok::Dedent => {
                    return Err(self.unexpected("unexpected dedent at top level"));
                }
                _ => stmts.extend(self.parse_statement()?),
            }
        }
        Ok(stmts)
    }

    /// Parses an indented suite after a `:` header.
    fn parse_suite(&mut self) -> Result<Vec<NodeId>, ParseError> {
        self.expect_op(":")?;
        if !matches!(self.peek(), Tok::Newline) {
            // Inline suite: `if x: return y`
            return self.parse_simple_statement_line();
        }
        self.bump(); // newline
        self.eat_newlines();
        if !matches!(self.peek(), Tok::Indent) {
            return Err(self.unexpected("expected indented block"));
        }
        self.bump();
        let mut stmts = Vec::new();
        loop {
            self.eat_newlines();
            match self.peek() {
                Tok::Dedent => {
                    self.bump();
                    break;
                }
                Tok::Eof => break,
                _ => stmts.extend(self.parse_statement()?),
            }
        }
        Ok(stmts)
    }

    fn parse_statement(&mut self) -> Result<Vec<NodeId>, ParseError> {
        match self.peek().clone() {
            Tok::Op("@") => {
                self.bump();
                let line = self.line();
                let expr = self.parse_expr()?;
                let deco = self.ast.non_terminal(vocab::decorator(), vec![expr]);
                self.ast.set_line(deco, line);
                self.eat_newlines();
                Ok(vec![deco])
            }
            Tok::Name(n) => match n.as_str() {
                "def" => Ok(vec![self.parse_def()?]),
                "async" => {
                    self.bump();
                    if self.at_kw("def") {
                        Ok(vec![self.parse_def()?])
                    } else {
                        Err(self.unexpected("expected def after async"))
                    }
                }
                "class" => Ok(vec![self.parse_class()?]),
                "if" => Ok(vec![self.parse_if()?]),
                "while" => Ok(vec![self.parse_while()?]),
                "for" => Ok(vec![self.parse_for()?]),
                "with" => Ok(vec![self.parse_with()?]),
                "try" => Ok(vec![self.parse_try()?]),
                _ => self.parse_simple_statement_line(),
            },
            _ => self.parse_simple_statement_line(),
        }
    }

    /// One or more `;`-separated simple statements followed by a newline.
    fn parse_simple_statement_line(&mut self) -> Result<Vec<NodeId>, ParseError> {
        let mut out = vec![self.parse_simple_statement()?];
        while self.eat_op(";") {
            if matches!(self.peek(), Tok::Newline | Tok::Eof) {
                break;
            }
            out.push(self.parse_simple_statement()?);
        }
        if !matches!(self.peek(), Tok::Newline | Tok::Eof | Tok::Dedent) {
            return Err(self.unexpected("expected end of statement"));
        }
        if matches!(self.peek(), Tok::Newline) {
            self.bump();
        }
        Ok(out)
    }

    fn parse_simple_statement(&mut self) -> Result<NodeId, ParseError> {
        let line = self.line();
        let node = match self.peek().clone() {
            Tok::Name(n) => match n.as_str() {
                "return" => {
                    self.bump();
                    let mut kids = Vec::new();
                    if !matches!(self.peek(), Tok::Newline | Tok::Eof | Tok::Dedent)
                        && !matches!(self.peek(), Tok::Op(";"))
                    {
                        kids.push(self.parse_expr_or_tuple()?);
                    }
                    self.ast.non_terminal(vocab::return_stmt(), kids)
                }
                "pass" => {
                    self.bump();
                    self.ast.non_terminal(vocab::pass_stmt(), vec![])
                }
                "break" => {
                    self.bump();
                    self.ast.non_terminal(vocab::break_stmt(), vec![])
                }
                "continue" => {
                    self.bump();
                    self.ast.non_terminal(vocab::continue_stmt(), vec![])
                }
                "raise" => {
                    self.bump();
                    let mut kids = Vec::new();
                    if !matches!(self.peek(), Tok::Newline | Tok::Eof | Tok::Dedent) {
                        kids.push(self.parse_expr()?);
                        if self.eat_kw("from") {
                            kids.push(self.parse_expr()?);
                        }
                    }
                    self.ast.non_terminal(vocab::raise_stmt(), kids)
                }
                "assert" => {
                    self.bump();
                    let mut kids = vec![self.parse_expr()?];
                    if self.eat_op(",") {
                        kids.push(self.parse_expr()?);
                    }
                    self.ast.non_terminal(vocab::assert_stmt(), kids)
                }
                "del" => {
                    self.bump();
                    let e = self.parse_expr()?;
                    self.ast.non_terminal(vocab::del_stmt(), vec![e])
                }
                "global" | "nonlocal" => {
                    self.bump();
                    let mut kids = Vec::new();
                    loop {
                        let (name, nline) = self.expect_name()?;
                        kids.push(self.name_node(
                            vocab::name_load(),
                            &name,
                            NameRole::Object,
                            nline,
                        ));
                        if !self.eat_op(",") {
                            break;
                        }
                    }
                    self.ast.non_terminal(vocab::global_stmt(), kids)
                }
                "import" => self.parse_import()?,
                "from" => self.parse_import_from()?,
                "yield" => {
                    self.bump();
                    let mut kids = Vec::new();
                    if self.eat_kw("from") {
                        kids.push(self.parse_expr()?);
                    } else if !matches!(self.peek(), Tok::Newline | Tok::Eof | Tok::Dedent) {
                        kids.push(self.parse_expr_or_tuple()?);
                    }
                    let y = self.ast.non_terminal("Yield", kids);
                    self.ast.non_terminal(vocab::expr_stmt(), vec![y])
                }
                _ => self.parse_expr_statement()?,
            },
            _ => self.parse_expr_statement()?,
        };
        self.ast.set_line(node, line);
        Ok(node)
    }

    fn parse_import(&mut self) -> Result<NodeId, ParseError> {
        self.expect_kw("import")?;
        let mut kids = Vec::new();
        loop {
            let target = self.parse_dotted_name()?;
            if self.eat_kw("as") {
                let (alias, aline) = self.expect_name()?;
                let alias_node = self.name_node(vocab::name_store(), &alias, NameRole::Object, aline);
                let a = self.ast.non_terminal(vocab::alias(), vec![target, alias_node]);
                kids.push(a);
            } else {
                kids.push(target);
            }
            if !self.eat_op(",") {
                break;
            }
        }
        Ok(self.ast.non_terminal(vocab::import_stmt(), kids))
    }

    fn parse_import_from(&mut self) -> Result<NodeId, ParseError> {
        self.expect_kw("from")?;
        // Relative imports: leading dots.
        while self.eat_op(".") {}
        let module = if self.at_kw("import") {
            let term = self.ast.terminal(".", TermKind::Other);
            self.ast.non_terminal(vocab::name_load(), vec![term])
        } else {
            self.parse_dotted_name()?
        };
        self.expect_kw("import")?;
        let mut kids = vec![module];
        if self.eat_op("*") {
            let star = self.op_term("*");
            kids.push(star);
            return Ok(self.ast.non_terminal(vocab::import_from(), kids));
        }
        let parenthesised = self.eat_op("(");
        loop {
            let (name, nline) = self.expect_name()?;
            let target = self.name_node(vocab::name_store(), &name, NameRole::Object, nline);
            if self.eat_kw("as") {
                let (alias, aline) = self.expect_name()?;
                let alias_node = self.name_node(vocab::name_store(), &alias, NameRole::Object, aline);
                let a = self.ast.non_terminal(vocab::alias(), vec![target, alias_node]);
                kids.push(a);
            } else {
                kids.push(target);
            }
            if !self.eat_op(",") {
                break;
            }
            if parenthesised && matches!(self.peek(), Tok::Op(")")) {
                break;
            }
        }
        if parenthesised {
            self.expect_op(")")?;
        }
        Ok(self.ast.non_terminal(vocab::import_from(), kids))
    }

    fn parse_dotted_name(&mut self) -> Result<NodeId, ParseError> {
        let (first, line) = self.expect_name()?;
        let mut node = self.name_node(vocab::name_load(), &first, NameRole::Object, line);
        while self.eat_op(".") {
            let (next, nline) = self.expect_name()?;
            let attr = self.name_node(vocab::attr(), &next, NameRole::Object, nline);
            node = self
                .ast
                .non_terminal(vocab::attribute_load(), vec![node, attr]);
        }
        Ok(node)
    }

    fn parse_expr_statement(&mut self) -> Result<NodeId, ParseError> {
        let first = self.parse_expr_or_tuple()?;
        // Augmented assignment.
        for op in [
            "+=", "-=", "*=", "/=", "//=", "%=", "**=", "&=", "|=", "^=", ">>=", "<<=",
        ] {
            if matches!(self.peek(), Tok::Op(o) if *o == op) {
                self.bump();
                let target = self.to_store(first);
                let op_node = self.op_term(op);
                let value = self.parse_expr_or_tuple()?;
                return Ok(self
                    .ast
                    .non_terminal(vocab::aug_assign(), vec![target, op_node, value]));
            }
        }
        if self.eat_op("=") {
            let mut targets = vec![self.to_store(first)];
            let mut value = self.parse_expr_or_tuple()?;
            // Chained assignment a = b = expr: rightmost is the value.
            while self.eat_op("=") {
                targets.push(self.to_store(value));
                value = self.parse_expr_or_tuple()?;
            }
            targets.push(value);
            return Ok(self.ast.non_terminal(vocab::assign(), targets));
        }
        // Annotated assignment `x: T = v` — only at statement level.
        if self.eat_op(":") {
            let ty = self.parse_expr()?;
            let target = self.to_store(first);
            let mut kids = vec![target, ty];
            if self.eat_op("=") {
                kids.push(self.parse_expr_or_tuple()?);
            }
            return Ok(self.ast.non_terminal(vocab::assign(), kids));
        }
        Ok(self.ast.non_terminal(vocab::expr_stmt(), vec![first]))
    }

    /// Rewrites a load-position expression into store position
    /// (`NameLoad` → `NameStore`, `AttributeLoad` → `AttributeStore`).
    fn to_store(&mut self, node: NodeId) -> NodeId {
        let v = self.ast.value(node);
        if v == vocab::name_load() {
            let kids = self.ast.children(node).to_vec();
            let line = self.ast.line(node);
            let new = self.ast.non_terminal(vocab::name_store(), kids);
            self.ast.set_line(new, line);
            new
        } else if v == vocab::attribute_load() {
            let kids = self.ast.children(node).to_vec();
            let line = self.ast.line(node);
            let new = self.ast.non_terminal(vocab::attribute_store(), kids);
            self.ast.set_line(new, line);
            new
        } else if v == vocab::tuple_lit() || v == vocab::list_lit() {
            let kids: Vec<NodeId> = self
                .ast
                .children(node)
                .to_vec()
                .into_iter()
                .map(|c| self.to_store(c))
                .collect();
            let new = self.ast.non_terminal(v, kids);
            new
        } else {
            node
        }
    }

    fn parse_def(&mut self) -> Result<NodeId, ParseError> {
        let line = self.line();
        self.expect_kw("def")?;
        let (name, nline) = self.expect_name()?;
        let name_node = self.name_node(vocab::name_store(), &name, NameRole::Function, nline);
        self.expect_op("(")?;
        let mut params = Vec::new();
        while !matches!(self.peek(), Tok::Op(")")) {
            let wrapper = if self.eat_op("**") {
                vocab::kw_param()
            } else if self.eat_op("*") {
                if matches!(self.peek(), Tok::Op(",")) {
                    // Bare `*` separator for keyword-only params.
                    self.eat_op(",");
                    continue;
                }
                vocab::star_param()
            } else {
                vocab::param()
            };
            let (pname, pline) = self.expect_name()?;
            let pnode = self.name_node(vocab::name_param(), &pname, NameRole::Object, pline);
            let mut kids = vec![pnode];
            if self.eat_op(":") {
                kids.push(self.parse_expr()?);
            }
            if self.eat_op("=") {
                kids.push(self.parse_expr()?);
            }
            params.push(self.ast.non_terminal(wrapper, kids));
            if !self.eat_op(",") {
                break;
            }
        }
        self.expect_op(")")?;
        if self.eat_op("->") {
            let _ret = self.parse_expr()?;
        }
        let params_node = self.ast.non_terminal(vocab::params(), params);
        let body = self.parse_suite()?;
        let mut kids = vec![name_node, params_node];
        kids.extend(body);
        let def = self.ast.non_terminal(vocab::function_def(), kids);
        self.ast.set_line(def, line);
        Ok(def)
    }

    fn parse_class(&mut self) -> Result<NodeId, ParseError> {
        let line = self.line();
        self.expect_kw("class")?;
        let (name, nline) = self.expect_name()?;
        let name_node = self.name_node(vocab::name_store(), &name, NameRole::Type, nline);
        let mut bases = Vec::new();
        if self.eat_op("(") {
            while !matches!(self.peek(), Tok::Op(")")) {
                // Skip metaclass= keyword bases.
                if let Tok::Name(n) = self.peek().clone() {
                    if !KEYWORDS.contains(&n.as_str())
                        && matches!(self.toks.get(self.pos + 1).map(|s| &s.tok), Some(Tok::Op("=")))
                    {
                        self.bump();
                        self.bump();
                        let _ = self.parse_expr()?;
                        if !self.eat_op(",") {
                            break;
                        }
                        continue;
                    }
                }
                let base = self.parse_expr()?;
                self.mark_type_role(base);
                bases.push(base);
                if !self.eat_op(",") {
                    break;
                }
            }
            self.expect_op(")")?;
        }
        let bases_node = self.ast.non_terminal(vocab::bases(), bases);
        let body = self.parse_suite()?;
        let mut kids = vec![name_node, bases_node];
        kids.extend(body);
        let class = self.ast.non_terminal(vocab::class_def(), kids);
        self.ast.set_line(class, line);
        Ok(class)
    }

    fn mark_type_role(&mut self, node: NodeId) {
        if self.ast.value(node) == vocab::name_load() {
            if let Some(&term) = self.ast.children(node).first() {
                self.ast.set_role(term, NameRole::Type);
            }
        }
    }

    fn parse_if(&mut self) -> Result<NodeId, ParseError> {
        let line = self.line();
        self.expect_kw("if")?;
        let cond = self.parse_expr()?;
        let body = self.parse_suite()?;
        let body_node = self.ast.non_terminal("Body", body);
        let mut kids = vec![cond, body_node];
        self.eat_newlines();
        if self.at_kw("elif") {
            self.bump();
            // Desugar elif into a nested if inside the else branch.
            self.pos -= 1;
            self.toks[self.pos] = Spanned {
                tok: Tok::Name("if".into()),
                line: self.line(),
            };
            let nested = self.parse_if()?;
            let or_else = self.ast.non_terminal("OrElse", vec![nested]);
            kids.push(or_else);
        } else if self.at_kw("else") {
            self.bump();
            let else_body = self.parse_suite()?;
            let or_else = self.ast.non_terminal("OrElse", else_body);
            kids.push(or_else);
        }
        let node = self.ast.non_terminal(vocab::if_stmt(), kids);
        self.ast.set_line(node, line);
        Ok(node)
    }

    fn parse_while(&mut self) -> Result<NodeId, ParseError> {
        let line = self.line();
        self.expect_kw("while")?;
        let cond = self.parse_expr()?;
        let body = self.parse_suite()?;
        let body_node = self.ast.non_terminal("Body", body);
        let mut kids = vec![cond, body_node];
        self.eat_newlines();
        if self.at_kw("else") {
            self.bump();
            let else_body = self.parse_suite()?;
            kids.push(self.ast.non_terminal("OrElse", else_body));
        }
        let node = self.ast.non_terminal(vocab::while_stmt(), kids);
        self.ast.set_line(node, line);
        Ok(node)
    }

    fn parse_for(&mut self) -> Result<NodeId, ParseError> {
        let line = self.line();
        self.expect_kw("for")?;
        let target = self.parse_expr_or_tuple_no_in()?;
        let target = self.to_store(target);
        self.expect_kw("in")?;
        let iter = self.parse_expr_or_tuple()?;
        let body = self.parse_suite()?;
        let body_node = self.ast.non_terminal("Body", body);
        let mut kids = vec![target, iter, body_node];
        self.eat_newlines();
        if self.at_kw("else") {
            self.bump();
            let else_body = self.parse_suite()?;
            kids.push(self.ast.non_terminal("OrElse", else_body));
        }
        let node = self.ast.non_terminal(vocab::for_stmt(), kids);
        self.ast.set_line(node, line);
        Ok(node)
    }

    fn parse_with(&mut self) -> Result<NodeId, ParseError> {
        let line = self.line();
        self.expect_kw("with")?;
        let mut kids = Vec::new();
        loop {
            let ctx = self.parse_expr()?;
            kids.push(ctx);
            if self.eat_kw("as") {
                let target = self.parse_expr()?;
                kids.push(self.to_store(target));
            }
            if !self.eat_op(",") {
                break;
            }
        }
        let body = self.parse_suite()?;
        kids.push(self.ast.non_terminal("Body", body));
        let node = self.ast.non_terminal(vocab::with_stmt(), kids);
        self.ast.set_line(node, line);
        Ok(node)
    }

    fn parse_try(&mut self) -> Result<NodeId, ParseError> {
        let line = self.line();
        self.expect_kw("try")?;
        let body = self.parse_suite()?;
        let mut kids = vec![self.ast.non_terminal("Body", body)];
        loop {
            self.eat_newlines();
            if self.at_kw("except") {
                self.bump();
                let hline = self.line();
                let mut hkids = Vec::new();
                if !matches!(self.peek(), Tok::Op(":")) {
                    let exc = self.parse_expr()?;
                    self.mark_type_role(exc);
                    hkids.push(exc);
                    if self.eat_kw("as") {
                        let (name, nline) = self.expect_name()?;
                        hkids.push(self.name_node(
                            vocab::name_store(),
                            &name,
                            NameRole::Object,
                            nline,
                        ));
                    }
                }
                let hbody = self.parse_suite()?;
                hkids.push(self.ast.non_terminal("Body", hbody));
                let h = self.ast.non_terminal(vocab::handler(), hkids);
                self.ast.set_line(h, hline);
                kids.push(h);
            } else if self.at_kw("finally") {
                self.bump();
                let fbody = self.parse_suite()?;
                kids.push(self.ast.non_terminal("Finally", fbody));
                break;
            } else if self.at_kw("else") {
                self.bump();
                let ebody = self.parse_suite()?;
                kids.push(self.ast.non_terminal("OrElse", ebody));
            } else {
                break;
            }
        }
        let node = self.ast.non_terminal(vocab::try_stmt(), kids);
        self.ast.set_line(node, line);
        Ok(node)
    }

    // ----- expressions ------------------------------------------------------

    fn parse_expr_or_tuple(&mut self) -> Result<NodeId, ParseError> {
        let first = self.parse_expr()?;
        if matches!(self.peek(), Tok::Op(",")) {
            let mut items = vec![first];
            while self.eat_op(",") {
                if matches!(
                    self.peek(),
                    Tok::Newline | Tok::Eof | Tok::Dedent | Tok::Op(")") | Tok::Op("]") | Tok::Op("}") | Tok::Op("=") | Tok::Op(":")
                ) {
                    break;
                }
                items.push(self.parse_expr()?);
            }
            return Ok(self.ast.non_terminal(vocab::tuple_lit(), items));
        }
        Ok(first)
    }

    fn parse_expr_or_tuple_no_in(&mut self) -> Result<NodeId, ParseError> {
        // `for a, b in …`: parse comma-separated unary targets without
        // consuming the `in` keyword.
        let first = self.parse_postfix()?;
        if matches!(self.peek(), Tok::Op(",")) {
            let mut items = vec![first];
            while self.eat_op(",") {
                if self.at_kw("in") {
                    break;
                }
                items.push(self.parse_postfix()?);
            }
            return Ok(self.ast.non_terminal(vocab::tuple_lit(), items));
        }
        Ok(first)
    }

    fn parse_expr(&mut self) -> Result<NodeId, ParseError> {
        self.parse_ternary()
    }

    fn parse_ternary(&mut self) -> Result<NodeId, ParseError> {
        let body = self.parse_or()?;
        if self.at_kw("if") {
            self.bump();
            let cond = self.parse_or()?;
            self.expect_kw("else")?;
            let orelse = self.parse_expr()?;
            return Ok(self
                .ast
                .non_terminal(vocab::ternary(), vec![cond, body, orelse]));
        }
        Ok(body)
    }

    fn parse_or(&mut self) -> Result<NodeId, ParseError> {
        let mut left = self.parse_and()?;
        while self.at_kw("or") {
            self.bump();
            let op = self.op_term("or");
            let right = self.parse_and()?;
            left = self.ast.non_terminal(vocab::bool_op(), vec![left, op, right]);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<NodeId, ParseError> {
        let mut left = self.parse_not()?;
        while self.at_kw("and") {
            self.bump();
            let op = self.op_term("and");
            let right = self.parse_not()?;
            left = self.ast.non_terminal(vocab::bool_op(), vec![left, op, right]);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<NodeId, ParseError> {
        if self.at_kw("not") {
            self.bump();
            let op = self.op_term("not");
            let operand = self.parse_not()?;
            return Ok(self.ast.non_terminal(vocab::unary_op(), vec![op, operand]));
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<NodeId, ParseError> {
        let mut left = self.parse_bitor()?;
        loop {
            let op: Option<String> = match self.peek() {
                Tok::Op(o @ ("==" | "!=" | "<" | ">" | "<=" | ">=")) => Some((*o).to_owned()),
                Tok::Name(n) if n == "in" => Some("in".to_owned()),
                Tok::Name(n) if n == "is" => Some("is".to_owned()),
                Tok::Name(n) if n == "not" => Some("not in".to_owned()),
                _ => None,
            };
            let Some(op) = op else { break };
            self.bump();
            if op == "not in" {
                self.expect_kw("in")?;
            }
            if op == "is" {
                self.eat_kw("not");
            }
            let op_node = self.op_term(&op);
            let right = self.parse_bitor()?;
            left = self
                .ast
                .non_terminal(vocab::compare(), vec![left, op_node, right]);
        }
        Ok(left)
    }

    fn parse_bitor(&mut self) -> Result<NodeId, ParseError> {
        self.parse_binary_level(0)
    }

    /// Binary operator precedence climbing over the arithmetic/bitwise tiers.
    fn parse_binary_level(&mut self, level: usize) -> Result<NodeId, ParseError> {
        const LEVELS: &[&[&str]] = &[
            &["|"],
            &["^"],
            &["&"],
            &["<<", ">>"],
            &["+", "-"],
            &["*", "/", "//", "%", "@"],
        ];
        if level >= LEVELS.len() {
            return self.parse_unary();
        }
        let mut left = self.parse_binary_level(level + 1)?;
        loop {
            let matched = match self.peek() {
                Tok::Op(o) => LEVELS[level].iter().find(|&&c| c == *o).copied(),
                _ => None,
            };
            let Some(op) = matched else { break };
            self.bump();
            let op_node = self.op_term(op);
            let right = self.parse_binary_level(level + 1)?;
            left = self
                .ast
                .non_terminal(vocab::bin_op(), vec![left, op_node, right]);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<NodeId, ParseError> {
        for op in ["-", "+", "~"] {
            if matches!(self.peek(), Tok::Op(o) if *o == op) {
                self.bump();
                let op_node = self.op_term(op);
                let operand = self.parse_unary()?;
                return Ok(self
                    .ast
                    .non_terminal(vocab::unary_op(), vec![op_node, operand]));
            }
        }
        self.parse_power()
    }

    fn parse_power(&mut self) -> Result<NodeId, ParseError> {
        let base = self.parse_postfix()?;
        if self.eat_op("**") {
            let op_node = self.op_term("**");
            let exp = self.parse_unary()?;
            return Ok(self
                .ast
                .non_terminal(vocab::bin_op(), vec![base, op_node, exp]));
        }
        Ok(base)
    }

    fn parse_postfix(&mut self) -> Result<NodeId, ParseError> {
        let mut node = self.parse_atom()?;
        loop {
            if self.eat_op(".") {
                let (name, nline) = self.expect_name()?;
                let attr = self.name_node(vocab::attr(), &name, NameRole::Object, nline);
                node = self
                    .ast
                    .non_terminal(vocab::attribute_load(), vec![node, attr]);
                self.ast.set_line(node, nline);
            } else if matches!(self.peek(), Tok::Op("(")) {
                node = self.parse_call(node)?;
            } else if self.eat_op("[") {
                let index = if matches!(self.peek(), Tok::Op(":")) {
                    self.parse_slice_tail(None)?
                } else {
                    let first = self.parse_expr()?;
                    if matches!(self.peek(), Tok::Op(":")) {
                        self.parse_slice_tail(Some(first))?
                    } else {
                        first
                    }
                };
                self.expect_op("]")?;
                node = self.ast.non_terminal(vocab::subscript(), vec![node, index]);
            } else {
                break;
            }
        }
        Ok(node)
    }

    fn parse_slice_tail(&mut self, first: Option<NodeId>) -> Result<NodeId, ParseError> {
        let mut kids = Vec::new();
        if let Some(f) = first {
            kids.push(f);
        }
        while self.eat_op(":") {
            if !matches!(self.peek(), Tok::Op("]") | Tok::Op(":")) {
                kids.push(self.parse_expr()?);
            }
        }
        Ok(self.ast.non_terminal(vocab::slice(), kids))
    }

    fn parse_call(&mut self, callee: NodeId) -> Result<NodeId, ParseError> {
        let line = self.line();
        self.expect_op("(")?;
        // Mark the callee's name terminal as a function reference.
        self.mark_callee(callee);
        let mut kids = vec![callee];
        while !matches!(self.peek(), Tok::Op(")")) {
            if self.eat_op("**") {
                let value = self.parse_expr()?;
                kids.push(self.ast.non_terminal(vocab::double_starred(), vec![value]));
            } else if self.eat_op("*") {
                let value = self.parse_expr()?;
                kids.push(self.ast.non_terminal(vocab::starred(), vec![value]));
            } else if let Tok::Name(n) = self.peek().clone() {
                if !KEYWORDS.contains(&n.as_str())
                    && matches!(self.toks.get(self.pos + 1).map(|s| &s.tok), Some(Tok::Op("=")))
                {
                    self.bump();
                    self.bump();
                    let kline = self.line();
                    let key = self.ast.terminal(&*n, TermKind::Ident);
                    self.ast.set_line(key, kline);
                    let value = self.parse_expr()?;
                    kids.push(self.ast.non_terminal(vocab::keyword_arg(), vec![key, value]));
                } else {
                    let arg = self.parse_expr()?;
                    kids.push(self.maybe_generator(arg)?);
                }
            } else {
                let arg = self.parse_expr()?;
                kids.push(self.maybe_generator(arg)?);
            }
            if !self.eat_op(",") {
                break;
            }
        }
        self.expect_op(")")?;
        let call = self.ast.non_terminal(vocab::call(), kids);
        self.ast.set_line(call, line);
        Ok(call)
    }

    /// Handles a bare generator expression argument: `f(x for x in xs)`.
    fn maybe_generator(&mut self, elt: NodeId) -> Result<NodeId, ParseError> {
        if self.at_kw("for") {
            return self.parse_comprehension_tail(elt);
        }
        Ok(elt)
    }

    fn mark_callee(&mut self, callee: NodeId) {
        let v = self.ast.value(callee);
        if v == vocab::attribute_load() {
            if let Some(&attr) = self.ast.children(callee).get(1) {
                if let Some(&term) = self.ast.children(attr).first() {
                    self.ast.set_role(term, NameRole::Function);
                }
            }
        } else if v == vocab::name_load() {
            if let Some(&term) = self.ast.children(callee).first() {
                self.ast.set_role(term, NameRole::Function);
            }
        }
    }

    fn parse_comprehension_tail(&mut self, elt: NodeId) -> Result<NodeId, ParseError> {
        let mut kids = vec![elt];
        while self.at_kw("for") {
            self.bump();
            let target = self.parse_expr_or_tuple_no_in()?;
            kids.push(self.to_store(target));
            self.expect_kw("in")?;
            kids.push(self.parse_or()?);
            while self.at_kw("if") {
                self.bump();
                kids.push(self.parse_or()?);
            }
        }
        Ok(self.ast.non_terminal(vocab::comprehension(), kids))
    }

    fn parse_atom(&mut self) -> Result<NodeId, ParseError> {
        let line = self.line();
        let node = match self.peek().clone() {
            Tok::Number(n) => {
                self.bump();
                let term = self.ast.terminal(&*n, TermKind::Num);
                self.ast.set_line(term, line);
                self.ast.non_terminal(vocab::num(), vec![term])
            }
            Tok::Str(s) => {
                self.bump();
                // Adjacent string literal concatenation.
                let mut full = s;
                while let Tok::Str(next) = self.peek().clone() {
                    self.bump();
                    full.push_str(&next);
                }
                let term = self.ast.terminal(&*full, TermKind::Str);
                self.ast.set_line(term, line);
                self.ast.non_terminal(vocab::str_lit(), vec![term])
            }
            Tok::Name(n) => match n.as_str() {
                "True" | "False" => {
                    self.bump();
                    let term = self.ast.terminal(&*n, TermKind::Bool);
                    self.ast.non_terminal(vocab::bool_lit(), vec![term])
                }
                "None" => {
                    self.bump();
                    let term = self.ast.terminal("None", TermKind::Null);
                    self.ast.non_terminal(vocab::none_lit(), vec![term])
                }
                "lambda" => {
                    self.bump();
                    let mut params = Vec::new();
                    while !matches!(self.peek(), Tok::Op(":")) {
                        let wrapper = if self.eat_op("**") {
                            vocab::kw_param()
                        } else if self.eat_op("*") {
                            vocab::star_param()
                        } else {
                            vocab::param()
                        };
                        let (pname, pline) = self.expect_name()?;
                        let pnode =
                            self.name_node(vocab::name_param(), &pname, NameRole::Object, pline);
                        let mut kids = vec![pnode];
                        if self.eat_op("=") {
                            kids.push(self.parse_expr()?);
                        }
                        params.push(self.ast.non_terminal(wrapper, kids));
                        if !self.eat_op(",") {
                            break;
                        }
                    }
                    self.expect_op(":")?;
                    let params_node = self.ast.non_terminal(vocab::params(), params);
                    let body = self.parse_expr()?;
                    self.ast.non_terminal(vocab::lambda(), vec![params_node, body])
                }
                "await" | "yield" => {
                    self.bump();
                    let inner = self.parse_expr()?;
                    self.ast.non_terminal("Await", vec![inner])
                }
                "not" => {
                    // `not` may appear here through parse_postfix from targets.
                    self.bump();
                    let op = self.op_term("not");
                    let operand = self.parse_not()?;
                    self.ast.non_terminal(vocab::unary_op(), vec![op, operand])
                }
                _ if KEYWORDS.contains(&n.as_str()) => {
                    return Err(self.unexpected("unexpected keyword in expression"));
                }
                _ => {
                    self.bump();
                    let term = self.ast.terminal(&*n, TermKind::Ident);
                    self.ast.set_role(term, NameRole::Object);
                    self.ast.set_line(term, line);
                    let node = self.ast.non_terminal(vocab::name_load(), vec![term]);
                    self.ast.set_line(node, line);
                    node
                }
            },
            Tok::Op("(") => {
                self.bump();
                if self.eat_op(")") {
                    self.ast.non_terminal(vocab::tuple_lit(), vec![])
                } else {
                    let first = self.parse_expr()?;
                    if self.at_kw("for") {
                        let comp = self.parse_comprehension_tail(first)?;
                        self.expect_op(")")?;
                        comp
                    } else if matches!(self.peek(), Tok::Op(",")) {
                        let mut items = vec![first];
                        while self.eat_op(",") {
                            if matches!(self.peek(), Tok::Op(")")) {
                                break;
                            }
                            items.push(self.parse_expr()?);
                        }
                        self.expect_op(")")?;
                        self.ast.non_terminal(vocab::tuple_lit(), items)
                    } else {
                        self.expect_op(")")?;
                        first
                    }
                }
            }
            Tok::Op("[") => {
                self.bump();
                let mut items = Vec::new();
                if !matches!(self.peek(), Tok::Op("]")) {
                    let first = self.parse_expr()?;
                    if self.at_kw("for") {
                        let comp = self.parse_comprehension_tail(first)?;
                        self.expect_op("]")?;
                        return Ok(comp);
                    }
                    items.push(first);
                    while self.eat_op(",") {
                        if matches!(self.peek(), Tok::Op("]")) {
                            break;
                        }
                        items.push(self.parse_expr()?);
                    }
                }
                self.expect_op("]")?;
                self.ast.non_terminal(vocab::list_lit(), items)
            }
            Tok::Op("{") => {
                self.bump();
                let mut items = Vec::new();
                let mut is_dict = true;
                if !matches!(self.peek(), Tok::Op("}")) {
                    let first = if self.eat_op("**") {
                        let v = self.parse_expr()?;
                        self.ast.non_terminal(vocab::double_starred(), vec![v])
                    } else {
                        self.parse_expr()?
                    };
                    if self.eat_op(":") {
                        let value = self.parse_expr()?;
                        if self.at_kw("for") {
                            let pair = self.ast.non_terminal(vocab::tuple_lit(), vec![first, value]);
                            let comp = self.parse_comprehension_tail(pair)?;
                            self.expect_op("}")?;
                            return Ok(comp);
                        }
                        items.push(first);
                        items.push(value);
                    } else {
                        if self.at_kw("for") {
                            let comp = self.parse_comprehension_tail(first)?;
                            self.expect_op("}")?;
                            return Ok(comp);
                        }
                        is_dict = false;
                        items.push(first);
                    }
                    while self.eat_op(",") {
                        if matches!(self.peek(), Tok::Op("}")) {
                            break;
                        }
                        if self.eat_op("**") {
                            let v = self.parse_expr()?;
                            items.push(self.ast.non_terminal(vocab::double_starred(), vec![v]));
                            continue;
                        }
                        let k = self.parse_expr()?;
                        items.push(k);
                        if is_dict && self.eat_op(":") {
                            items.push(self.parse_expr()?);
                        }
                    }
                }
                self.expect_op("}")?;
                let kind = if is_dict {
                    vocab::dict_lit()
                } else {
                    vocab::set_lit()
                };
                self.ast.non_terminal(kind, items)
            }
            Tok::Op("*") => {
                self.bump();
                let inner = self.parse_expr()?;
                self.ast.non_terminal(vocab::starred(), vec![inner])
            }
            Tok::Op("...") => {
                self.bump();
                let term = self.ast.terminal("...", TermKind::Other);
                self.ast.non_terminal(vocab::name_load(), vec![term])
            }
            _ => return Err(self.unexpected("expected expression")),
        };
        self.ast.set_line(node, line);
        Ok(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sexp(src: &str) -> String {
        let ast = parse(src).unwrap_or_else(|e| panic!("parse failed for {src:?}: {e}"));
        ast.to_sexp(ast.root())
    }

    #[test]
    fn figure_2_statement_shape() {
        let s = sexp("self.assertTrue(picture.rotate_angle, 90)\n");
        assert_eq!(
            s,
            "(Module (ExprStmt (Call (AttributeLoad (NameLoad self) (Attr assertTrue)) \
             (AttributeLoad (NameLoad picture) (Attr rotate_angle)) (Num 90))))"
        );
    }

    #[test]
    fn assignment_shapes() {
        assert_eq!(
            sexp("x = 1\n"),
            "(Module (Assign (NameStore x) (Num 1)))"
        );
        assert_eq!(
            sexp("self.help = docstring\n"),
            "(Module (Assign (AttributeStore (NameLoad self) (Attr help)) (NameLoad docstring)))"
        );
    }

    #[test]
    fn aug_assign() {
        assert_eq!(
            sexp("count += 1\n"),
            "(Module (AugAssign (NameStore count) += (Num 1)))"
        );
    }

    #[test]
    fn function_def_with_kwargs() {
        let s = sexp("def evolve(self, a, **args):\n    pass\n");
        assert!(s.contains("(FunctionDef (NameStore evolve) (Params (Param (NameParam self)) (Param (NameParam a)) (KwParam (NameParam args))) (Pass))"), "{s}");
    }

    #[test]
    fn class_def_with_base() {
        let s = sexp("class TestPicture(TestCase):\n    pass\n");
        assert!(s.starts_with("(Module (ClassDef (NameStore TestPicture) (Bases (NameLoad TestCase))"), "{s}");
    }

    #[test]
    fn for_loop_header() {
        let s = sexp("for i in xrange(10):\n    pass\n");
        assert!(s.contains("(For (NameStore i) (Call (NameLoad xrange) (Num 10)) (Body (Pass)))"), "{s}");
    }

    #[test]
    fn if_elif_else_desugars() {
        let s = sexp("if a:\n    x = 1\nelif b:\n    x = 2\nelse:\n    x = 3\n");
        assert!(s.contains("(OrElse (If (NameLoad b)"), "{s}");
    }

    #[test]
    fn try_except_as() {
        let s = sexp("try:\n    run()\nexcept ValueError as e:\n    pass\n");
        assert!(s.contains("(Handler (NameLoad ValueError) (NameStore e) (Body (Pass)))"), "{s}");
    }

    #[test]
    fn with_as_target() {
        let s = sexp("with open(path) as f:\n    pass\n");
        assert!(s.contains("(With (Call (NameLoad open) (NameLoad path)) (NameStore f) (Body (Pass)))"), "{s}");
    }

    #[test]
    fn keyword_arguments() {
        let s = sexp("f(a, key=1)\n");
        assert!(s.contains("(KeywordArg key (Num 1))"), "{s}");
    }

    #[test]
    fn star_args_at_call() {
        let s = sexp("f(*args, **kwargs)\n");
        assert!(s.contains("(Starred (NameLoad args))"), "{s}");
        assert!(s.contains("(DoubleStarred (NameLoad kwargs))"), "{s}");
    }

    #[test]
    fn chained_comparison_and_boolop() {
        let s = sexp("x = a < b and c == d\n");
        assert!(s.contains("BoolOp"), "{s}");
        assert!(s.contains("(Compare (NameLoad a) < (NameLoad b))"), "{s}");
    }

    #[test]
    fn comprehension() {
        let s = sexp("xs = [x * 2 for x in ys if x]\n");
        assert!(s.contains("Comprehension"), "{s}");
    }

    #[test]
    fn lambda_expression() {
        let s = sexp("f = lambda x: x + 1\n");
        assert!(s.contains("(Lambda (Params (Param (NameParam x))) (BinOp (NameLoad x) + (Num 1)))"), "{s}");
    }

    #[test]
    fn subscript_and_slice() {
        assert!(sexp("x = a[0]\n").contains("(Subscript (NameLoad a) (Num 0))"));
        assert!(sexp("x = a[1:2]\n").contains("(Slice (Num 1) (Num 2))"));
    }

    #[test]
    fn imports() {
        let s = sexp("import numpy as np\nfrom os.path import join, exists\n");
        assert!(s.contains("(Alias (NameLoad numpy) (NameStore np))"), "{s}");
        assert!(s.contains("(ImportFrom (AttributeLoad (NameLoad os) (Attr path)) (NameStore join) (NameStore exists))"), "{s}");
    }

    #[test]
    fn decorator_statement() {
        let s = sexp("@property\ndef f(self):\n    pass\n");
        assert!(s.contains("(Decorator (NameLoad property))"), "{s}");
    }

    #[test]
    fn chained_assignment() {
        let s = sexp("a = b = 1\n");
        assert!(s.contains("(Assign (NameStore a) (NameStore b) (Num 1))"), "{s}");
    }

    #[test]
    fn roles_are_assigned() {
        let ast = parse("self.assertTrue(x)\n").unwrap();
        let mut saw_function = false;
        let mut saw_object = false;
        for n in ast.iter() {
            if ast.is_terminal(n) {
                match ast.role(n) {
                    NameRole::Function => saw_function = ast.value(n).as_str() == "assertTrue",
                    NameRole::Object if ast.value(n).as_str() == "self" => saw_object = true,
                    _ => {}
                }
            }
        }
        assert!(saw_function && saw_object);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse("def f(:\n").is_err());
        assert!(parse("x = = 1\n").is_err());
    }

    #[test]
    fn ternary_expression() {
        let s = sexp("x = a if c else b\n");
        assert!(s.contains("(Ternary (NameLoad c) (NameLoad a) (NameLoad b))"), "{s}");
    }

    #[test]
    fn return_tuple() {
        let s = sexp("def f():\n    return a, b\n");
        assert!(s.contains("(Return (TupleLit (NameLoad a) (NameLoad b)))"), "{s}");
    }

    #[test]
    fn nested_calls() {
        let s = sexp("self.sz = N.array(sz)\n");
        assert!(s.contains("(Assign (AttributeStore (NameLoad self) (Attr sz)) (Call (AttributeLoad (NameLoad N) (Attr array)) (NameLoad sz)))"), "{s}");
    }

    #[test]
    fn dict_literal() {
        let s = sexp("d = {'a': 1, 'b': 2}\n");
        assert!(s.contains("DictLit"), "{s}");
    }

    #[test]
    fn global_statement() {
        let s = sexp("def f():\n    global counter\n    counter = 1\n");
        assert!(s.contains("(Global (NameLoad counter))"), "{s}");
    }
}
