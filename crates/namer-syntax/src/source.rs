//! Source files and parse errors.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The languages Namer supports end to end.
///
/// This enum is the cheap `Copy` handle; everything the pipeline knows
/// about a language (parser, extensions, stable digest tags, naming
/// conventions, receiver style) lives behind [`crate::lang::Language`],
/// looked up via [`crate::lang::spec`] / [`Lang::spec`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Lang {
    /// Python (dynamically typed).
    Python,
    /// Java (statically typed).
    Java,
    /// JavaScript / TypeScript.
    Js,
}

impl fmt::Display for Lang {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.spec().name())
    }
}

/// A source file together with its repository identity.
///
/// The defect classifier's features (Table 1 of the paper) aggregate
/// statistics at file, repository, and dataset level, so every file carries
/// the repository it belongs to.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourceFile {
    /// Repository the file belongs to (e.g. `"github.com/acme/widget"`).
    pub repo: String,
    /// Path of the file within the repository.
    pub path: String,
    /// Full file contents.
    pub text: String,
    /// Language of the file.
    pub lang: Lang,
}

impl SourceFile {
    /// Convenience constructor.
    pub fn new(
        repo: impl Into<String>,
        path: impl Into<String>,
        text: impl Into<String>,
        lang: Lang,
    ) -> SourceFile {
        SourceFile {
            repo: repo.into(),
            path: path.into(),
            text: text.into(),
            lang,
        }
    }
}

/// Error produced by the lexers and parsers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line where the problem was detected.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
    /// Language name from the registry, stamped by
    /// [`parse_file`](crate::parse_file) so quarantine diagnostics name the
    /// frontend that rejected the file. `None` for errors built directly by
    /// a lexer/parser.
    pub lang_name: Option<&'static str>,
}

impl ParseError {
    /// Creates a parse error at `line`.
    pub fn new(line: u32, message: impl Into<String>) -> ParseError {
        ParseError {
            line,
            message: message.into(),
            lang_name: None,
        }
    }

    /// Stamps the registry language name onto this error.
    pub fn with_lang(mut self, lang: &'static str) -> ParseError {
        self.lang_name = Some(lang);
        self
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.lang_name {
            Some(lang) => write!(
                f,
                "{lang} parse error at line {}: {}",
                self.line, self.message
            ),
            None => write!(f, "parse error at line {}: {}", self.line, self.message),
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_displays_line() {
        let e = ParseError::new(3, "unexpected token");
        assert_eq!(e.to_string(), "parse error at line 3: unexpected token");
        let e = e.with_lang("JavaScript");
        assert_eq!(
            e.to_string(),
            "JavaScript parse error at line 3: unexpected token"
        );
    }

    #[test]
    fn lang_displays() {
        assert_eq!(Lang::Python.to_string(), "Python");
        assert_eq!(Lang::Java.to_string(), "Java");
        assert_eq!(Lang::Js.to_string(), "JavaScript");
    }
}
