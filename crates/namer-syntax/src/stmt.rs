//! Statement extraction.
//!
//! Definition 3.1 works on ASTs "for a program statement … part of the
//! abstract syntax tree of the whole program, projected on a specific
//! statement only". This module walks a parsed file tree and emits one small
//! [`Stmt`] per simple statement and per compound-statement *header* (the
//! `for …` line without its body, the `def` signature without its suite, …),
//! keeping a back-map from statement nodes to the file tree so analysis
//! results computed on the file can decorate the statement.

use crate::ast::{Ast, NodeId};
use crate::intern::Sym;
use crate::vocab;
use std::collections::HashSet;

/// One extracted statement: a self-contained AST plus provenance.
#[derive(Clone, Debug)]
pub struct Stmt {
    /// The projected statement tree (rooted at the statement node).
    pub ast: Ast,
    /// `back[n.index()]` is the file-AST node the statement node `n` copies.
    pub back: Vec<NodeId>,
    /// 1-based line of the statement in the source file.
    pub line: u32,
    /// Innermost enclosing class name, if any.
    pub enclosing_class: Option<Sym>,
    /// Innermost enclosing function/method name, if any.
    pub enclosing_function: Option<Sym>,
}

impl Stmt {
    /// File-AST node corresponding to statement node `n`.
    pub fn back(&self, n: NodeId) -> NodeId {
        self.back[n.index()]
    }

    /// Renders the statement tree as an s-expression (for debugging).
    pub fn to_sexp(&self) -> String {
        self.ast.to_sexp(self.ast.root())
    }
}

fn simple_stmt_values() -> HashSet<Sym> {
    [
        vocab::assign(),
        vocab::aug_assign(),
        vocab::expr_stmt(),
        vocab::return_stmt(),
        vocab::raise_stmt(),
        vocab::assert_stmt(),
        vocab::del_stmt(),
        vocab::import_stmt(),
        vocab::import_from(),
        vocab::global_stmt(),
        vocab::local_var(),
        vocab::field_decl(),
        vocab::throw_stmt(),
        vocab::decorator(),
    ]
    .into_iter()
    .collect()
}

fn header_stmt_values() -> HashSet<Sym> {
    [
        vocab::function_def(),
        vocab::method_decl(),
        vocab::ctor_decl(),
        vocab::class_def(),
        vocab::if_stmt(),
        vocab::while_stmt(),
        vocab::for_stmt(),
        vocab::for_classic(),
        vocab::with_stmt(),
        vocab::handler(),
        vocab::switch_stmt(),
        vocab::synchronized_stmt(),
        Sym::intern("DoWhile"),
    ]
    .into_iter()
    .collect()
}

fn body_values() -> HashSet<Sym> {
    [
        Sym::intern("Body"),
        Sym::intern("OrElse"),
        Sym::intern("Finally"),
        Sym::intern("Block"),
        Sym::intern("Case"),
        Sym::intern("Initializer"),
    ]
    .into_iter()
    .collect()
}

/// Extracts all statements from a parsed file tree.
///
/// # Examples
///
/// ```
/// let ast = namer_syntax::python::parse("for i in xrange(10):\n    total += i\n")?;
/// let stmts = namer_syntax::stmt::extract(&ast);
/// assert_eq!(stmts.len(), 2); // the `for` header and the `+=`
/// # Ok::<(), namer_syntax::ParseError>(())
/// ```
pub fn extract(file: &Ast) -> Vec<Stmt> {
    let mut ex = Extractor {
        file,
        simple: simple_stmt_values(),
        header: header_stmt_values(),
        body: body_values(),
        out: Vec::new(),
        class_stack: Vec::new(),
        fn_stack: Vec::new(),
    };
    if let Some(root) = file.try_root() {
        ex.walk(root);
    }
    ex.out
}

struct Extractor<'a> {
    file: &'a Ast,
    simple: HashSet<Sym>,
    header: HashSet<Sym>,
    body: HashSet<Sym>,
    out: Vec<Stmt>,
    class_stack: Vec<Sym>,
    fn_stack: Vec<Sym>,
}

impl Extractor<'_> {
    fn walk(&mut self, id: NodeId) {
        let v = self.file.value(id);
        if self.simple.contains(&v) {
            self.emit_full(id);
            // Simple statements may still contain nested statement trees via
            // lambdas; we do not descend into those.
            return;
        }
        if self.header.contains(&v) {
            self.emit_header(id);
            let is_class = v == vocab::class_def();
            let is_fn = v == vocab::function_def()
                || v == vocab::method_decl()
                || v == vocab::ctor_decl();
            if is_class {
                if let Some(name) = self.declared_name(id) {
                    self.class_stack.push(name);
                }
            }
            if is_fn {
                if let Some(name) = self.declared_name(id) {
                    self.fn_stack.push(name);
                }
            }
            // Descend into bodies (and, for classes, directly into members).
            for &c in self.file.children(id) {
                let cv = self.file.value(c);
                if self.body.contains(&cv) {
                    for &s in self.file.children(c) {
                        self.walk(s);
                    }
                } else if is_class || is_fn {
                    // Class/function bodies are inlined as direct children
                    // after the header parts; skip the header parts.
                    if cv != vocab::name_store()
                        && cv != vocab::params()
                        && cv != vocab::bases()
                        && cv != vocab::type_ref()
                    {
                        self.walk(c);
                    }
                }
            }
            if is_class {
                self.class_stack.pop();
            }
            if is_fn {
                self.fn_stack.pop();
            }
            return;
        }
        // Structural nodes (Module, Try, Body at top, …): descend.
        for c in self.file.children(id).to_vec() {
            self.walk(c);
        }
    }

    fn declared_name(&self, id: NodeId) -> Option<Sym> {
        for &c in self.file.children(id) {
            if self.file.value(c) == vocab::name_store() {
                return self
                    .file
                    .children(c)
                    .first()
                    .map(|&t| self.file.value(t));
            }
        }
        None
    }

    fn emit_full(&mut self, id: NodeId) {
        let mut ast = Ast::new();
        let mut pairs = Vec::new();
        let root = ast.copy_subtree(self.file, id, &mut pairs);
        ast.set_root(root);
        self.push_stmt(ast, pairs, id);
    }

    fn emit_header(&mut self, id: NodeId) {
        let mut ast = Ast::new();
        let mut pairs = Vec::new();
        let root = self.copy_header(&mut ast, id, &mut pairs);
        ast.set_root(root);
        self.push_stmt(ast, pairs, id);
    }

    /// Copies a compound statement without its body-like children.
    fn copy_header(&self, ast: &mut Ast, id: NodeId, pairs: &mut Vec<(NodeId, NodeId)>) -> NodeId {
        let is_class_or_fn = {
            let v = self.file.value(id);
            v == vocab::class_def()
                || v == vocab::function_def()
                || v == vocab::method_decl()
                || v == vocab::ctor_decl()
        };
        let children: Vec<NodeId> = self
            .file
            .children(id)
            .iter()
            .filter(|&&c| {
                let cv = self.file.value(c);
                if self.body.contains(&cv) {
                    return false;
                }
                if is_class_or_fn {
                    // Keep only header parts: name, params, bases, return type.
                    return cv == vocab::name_store()
                        || cv == vocab::params()
                        || cv == vocab::bases()
                        || cv == vocab::type_ref();
                }
                // Compound headers like Switch keep everything non-body;
                // nested statement-valued children (e.g. LocalVar inside a
                // classic-for Init) are part of the header and are copied.
                true
            })
            .map(|&c| ast.copy_subtree(self.file, c, pairs))
            .collect();
        let root = ast.non_terminal(self.file.value(id), children);
        ast.set_line(root, self.file.line(id));
        pairs.push((root, id));
        root
    }

    fn push_stmt(&mut self, ast: Ast, pairs: Vec<(NodeId, NodeId)>, src: NodeId) {
        let mut back = vec![NodeId(0); ast.len()];
        for (new, old) in pairs {
            back[new.index()] = old;
        }
        self.out.push(Stmt {
            line: self.file.line(src),
            enclosing_class: self.class_stack.last().copied(),
            enclosing_function: self.fn_stack.last().copied(),
            ast,
            back,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::python;

    fn stmts(src: &str) -> Vec<Stmt> {
        extract(&python::parse(src).unwrap())
    }

    #[test]
    fn simple_statements_are_whole() {
        let s = stmts("x = 1\ny = 2\n");
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].to_sexp(), "(Assign (NameStore x) (Num 1))");
    }

    #[test]
    fn compound_headers_drop_bodies() {
        let s = stmts("for i in xs:\n    total += i\n");
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].to_sexp(), "(For (NameStore i) (NameLoad xs))");
        assert_eq!(s[1].to_sexp(), "(AugAssign (NameStore total) += (NameLoad i))");
    }

    #[test]
    fn def_header_keeps_name_and_params() {
        let s = stmts("def f(a, b=1):\n    return a\n");
        assert_eq!(
            s[0].to_sexp(),
            "(FunctionDef (NameStore f) (Params (Param (NameParam a)) (Param (NameParam b) (Num 1))))"
        );
    }

    #[test]
    fn enclosing_context_is_tracked() {
        let s = stmts("class C:\n    def m(self):\n        self.x = 1\n");
        let assign = s.iter().find(|s| s.to_sexp().contains("Assign")).unwrap();
        assert_eq!(assign.enclosing_class.unwrap().as_str(), "C");
        assert_eq!(assign.enclosing_function.unwrap().as_str(), "m");
    }

    #[test]
    fn try_except_bodies_are_walked() {
        let s = stmts("try:\n    a = 1\nexcept ValueError as e:\n    b = 2\n");
        let sexps: Vec<String> = s.iter().map(Stmt::to_sexp).collect();
        assert!(sexps.iter().any(|x| x.starts_with("(Handler")), "{sexps:?}");
        assert!(sexps.iter().any(|x| x.contains("(NameStore a)")));
        assert!(sexps.iter().any(|x| x.contains("(NameStore b)")));
    }

    #[test]
    fn back_map_points_into_file_ast() {
        let file = python::parse("x = compute()\n").unwrap();
        let s = extract(&file);
        let stmt = &s[0];
        for n in stmt.ast.iter() {
            let orig = stmt.back(n);
            assert_eq!(stmt.ast.value(n), file.value(orig));
        }
    }

    #[test]
    fn lines_are_recorded() {
        let s = stmts("a = 1\n\n\nb = 2\n");
        assert_eq!(s[0].line, 1);
        assert_eq!(s[1].line, 4);
    }

    #[test]
    fn java_members_extracted() {
        let file = crate::java::parse(
            "class A { int x = 0; void f(int p) { this.x = p; } }",
        )
        .unwrap();
        let s = extract(&file);
        let sexps: Vec<String> = s.iter().map(Stmt::to_sexp).collect();
        assert!(sexps.iter().any(|x| x.starts_with("(ClassDef (NameStore A)")), "{sexps:?}");
        assert!(sexps.iter().any(|x| x.starts_with("(FieldDecl")), "{sexps:?}");
        assert!(sexps.iter().any(|x| x.starts_with("(MethodDecl")), "{sexps:?}");
        assert!(sexps.iter().any(|x| x.starts_with("(Assign (AttributeStore")), "{sexps:?}");
    }

    #[test]
    fn java_classic_for_header_keeps_init() {
        let file = crate::java::parse(
            "class A { void f() { for (double i = 1; i < n; i++) { g(); } } }",
        )
        .unwrap();
        let s = extract(&file);
        let header = s
            .iter()
            .find(|s| s.to_sexp().starts_with("(ForClassic"))
            .unwrap();
        assert!(header.to_sexp().contains("(TypeRef double)"), "{}", header.to_sexp());
        assert!(!header.to_sexp().contains("(Call (NameLoad g))"));
    }
}
