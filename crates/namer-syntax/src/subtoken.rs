//! Identifier subtoken splitting.
//!
//! §3.1 step 3 of the paper splits identifier names "into subtokens based on
//! standard naming conventions such as camelCase and snake_case". The splitter
//! here handles snake_case, camelCase, PascalCase, SCREAMING_SNAKE, acronym
//! runs (`HTTPServer` → `HTTP`, `Server`), and digit groups, while preserving
//! the original casing of each piece (`assertTrue` → `assert`, `True`).

/// Splits an identifier into its subtokens.
///
/// Unsplittable names (e.g. `self`, `x`) produce a single subtoken. Leading,
/// trailing, and repeated underscores are treated as separators and never
/// appear in the output; a name consisting only of underscores yields itself.
///
/// # Examples
///
/// ```
/// use namer_syntax::subtoken::split;
/// assert_eq!(split("assertTrue"), ["assert", "True"]);
/// assert_eq!(split("rotate_angle"), ["rotate", "angle"]);
/// assert_eq!(split("HTTPServer2"), ["HTTP", "Server", "2"]);
/// assert_eq!(split("self"), ["self"]);
/// ```
pub fn split(name: &str) -> Vec<String> {
    let mut out = Vec::new();
    for piece in name.split('_').filter(|p| !p.is_empty()) {
        split_camel(piece, &mut out);
    }
    if out.is_empty() {
        // `_`, `__`, or the empty string: keep the original spelling so the
        // statement still contributes a (degenerate) subtoken.
        out.push(name.to_owned());
    }
    out
}

/// Number of subtokens [`split`] would produce, without allocating them.
pub fn count(name: &str) -> usize {
    let mut n = 0;
    for piece in name.split('_').filter(|p| !p.is_empty()) {
        n += count_camel(piece);
    }
    n.max(1)
}

/// Joins subtokens back into a snake_case identifier.
///
/// Used when rendering suggested fixes: the deduction of a violated pattern
/// replaces one subtoken and the fix is re-serialised for display.
pub fn join_snake(parts: &[String]) -> String {
    parts
        .iter()
        .map(|p| p.to_lowercase())
        .collect::<Vec<_>>()
        .join("_")
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum CharClass {
    Lower,
    Upper,
    Digit,
    Other,
}

fn classify(c: char) -> CharClass {
    if c.is_lowercase() {
        CharClass::Lower
    } else if c.is_uppercase() {
        CharClass::Upper
    } else if c.is_ascii_digit() {
        CharClass::Digit
    } else {
        CharClass::Other
    }
}

/// Boundary test: does a new subtoken start at position `i` (chars `prev`,
/// `cur`, lookahead `next`)?
fn is_boundary(prev: CharClass, cur: CharClass, next: Option<CharClass>) -> bool {
    use CharClass::*;
    match (prev, cur) {
        // fooBar → foo | Bar
        (Lower, Upper) => true,
        // HTTPServer → HTTP | Server (upper run followed by a lower char)
        (Upper, Upper) => next == Some(Lower),
        // foo2 → foo | 2 ; 2foo → 2 | foo
        (Lower | Upper, Digit) => true,
        (Digit, Lower | Upper) => true,
        _ => false,
    }
}

fn split_camel(piece: &str, out: &mut Vec<String>) {
    let chars: Vec<char> = piece.chars().collect();
    let classes: Vec<CharClass> = chars.iter().map(|&c| classify(c)).collect();
    let mut start = 0;
    for i in 1..chars.len() {
        if is_boundary(classes[i - 1], classes[i], classes.get(i + 1).copied()) {
            out.push(chars[start..i].iter().collect());
            start = i;
        }
    }
    if start < chars.len() {
        out.push(chars[start..].iter().collect());
    }
}

fn count_camel(piece: &str) -> usize {
    let chars: Vec<char> = piece.chars().collect();
    let classes: Vec<CharClass> = chars.iter().map(|&c| classify(c)).collect();
    let mut n = usize::from(!chars.is_empty());
    for i in 1..chars.len() {
        if is_boundary(classes[i - 1], classes[i], classes.get(i + 1).copied()) {
            n += 1;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snake_case() {
        assert_eq!(split("rotate_angle"), ["rotate", "angle"]);
        assert_eq!(split("num_or_process"), ["num", "or", "process"]);
    }

    #[test]
    fn camel_case_preserves_casing() {
        assert_eq!(split("assertTrue"), ["assert", "True"]);
        assert_eq!(split("getStackTrace"), ["get", "Stack", "Trace"]);
    }

    #[test]
    fn pascal_case() {
        assert_eq!(split("TestPicture"), ["Test", "Picture"]);
    }

    #[test]
    fn screaming_snake() {
        assert_eq!(split("MAX_VALUE"), ["MAX", "VALUE"]);
    }

    #[test]
    fn acronym_runs() {
        assert_eq!(split("HTTPServer"), ["HTTP", "Server"]);
        assert_eq!(split("parseXMLDoc"), ["parse", "XML", "Doc"]);
    }

    #[test]
    fn digits_split() {
        assert_eq!(split("vec2d"), ["vec", "2", "d"]);
        assert_eq!(split("utf8"), ["utf", "8"]);
    }

    #[test]
    fn unsplittable_names() {
        assert_eq!(split("self"), ["self"]);
        assert_eq!(split("x"), ["x"]);
        assert_eq!(split("NUM"), ["NUM"]);
    }

    #[test]
    fn dunder_names() {
        assert_eq!(split("__init__"), ["init"]);
        assert_eq!(split("_private_field"), ["private", "field"]);
    }

    #[test]
    fn underscore_only() {
        assert_eq!(split("_"), ["_"]);
        assert_eq!(split("__"), ["__"]);
    }

    #[test]
    fn count_matches_split() {
        for name in [
            "assertTrue",
            "rotate_angle",
            "HTTPServer2",
            "self",
            "_",
            "parseXMLDoc",
            "MAX_VALUE",
            "__init__",
        ] {
            assert_eq!(count(name), split(name).len(), "mismatch for {name}");
        }
    }

    #[test]
    fn join_snake_lowercases() {
        let parts = split("assertEqual");
        assert_eq!(join_snake(&parts), "assert_equal");
    }
}
