//! The AST+ transformation (§3.1 of the paper).
//!
//! Given a parsed statement AST, [`to_ast_plus`] applies the four steps:
//!
//! 1. literal abstraction — numeric values become `NUM`, strings `STR`,
//!    booleans `BOOL` (and null-likes `NONE`);
//! 2. a `NumArgs(k)` node is inserted above every call and every function
//!    definition, where `k` is the number of arguments;
//! 3. every named terminal is split into subtokens and replaced by a
//!    `NumST(k)` node whose children are the subtoken terminals (literals get
//!    `NumST(1)`);
//! 4. origin decoration — terminals whose origin the static analysis resolved
//!    get an origin-valued node inserted as the parent of each subtoken, as
//!    in Figure 2 (c) where `self`, `assert` and `True` all sit below
//!    `TestCase` nodes. Unresolved (⊤) origins insert nothing, matching the
//!    paper ("when the origin sites are precisely computed … this
//!    information is added").

use crate::ast::{Ast, NodeId, TermKind};
use crate::intern::Sym;
use crate::subtoken;
use crate::vocab;
use std::collections::HashMap;

/// Origin assignments for the terminals of one statement AST.
///
/// Keys are terminal [`NodeId`]s of the *input* statement tree; values are
/// origin symbols (an allocation-site class like `TestCase`, a primitive
/// source like `Str`, or [`vocab::object_top`] when the analysis wants to
/// force a generic origin). Terminals absent from the map get no origin node
/// (the ⊤ case). An empty map therefore reproduces the "w/o A" ablation of
/// Tables 2 and 5.
#[derive(Clone, Debug, Default)]
pub struct Origins {
    map: HashMap<NodeId, Sym>,
}

impl Origins {
    /// Creates an empty origin assignment (no decoration — the "w/o A" mode).
    pub fn new() -> Origins {
        Origins::default()
    }

    /// Assigns `origin` to terminal `node`.
    pub fn set(&mut self, node: NodeId, origin: Sym) {
        self.map.insert(node, origin);
    }

    /// The origin assigned to `node`, if resolved.
    pub fn get(&self, node: NodeId) -> Option<Sym> {
        self.map.get(&node).copied()
    }

    /// Number of resolved terminals.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if no terminal has a resolved origin.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl FromIterator<(NodeId, Sym)> for Origins {
    fn from_iter<I: IntoIterator<Item = (NodeId, Sym)>>(iter: I) -> Origins {
        Origins {
            map: iter.into_iter().collect(),
        }
    }
}

/// Applies the AST+ transformation to a statement tree.
///
/// # Examples
///
/// ```
/// use namer_syntax::{python, stmt, transform};
/// let file = python::parse("self.assertTrue(x, 90)\n")?;
/// let s = &stmt::extract(&file)[0];
/// let plus = transform::to_ast_plus(&s.ast, &transform::Origins::new());
/// let sexp = plus.to_sexp(plus.root());
/// assert!(sexp.contains("NumArgs(2)"));
/// assert!(sexp.contains("(NumST(2) assert True)"));
/// assert!(sexp.contains("(NumST(1) NUM)"));
/// # Ok::<(), namer_syntax::ParseError>(())
/// ```
pub fn to_ast_plus(stmt: &Ast, origins: &Origins) -> Ast {
    let mut out = Ast::new();
    let root = rebuild(stmt, stmt.root(), &mut out, origins);
    out.set_root(root);
    out
}

fn rebuild(src: &Ast, id: NodeId, out: &mut Ast, origins: &Origins) -> NodeId {
    if src.is_terminal(id) {
        return rebuild_terminal(src, id, out, origins);
    }
    let children: Vec<NodeId> = src
        .children(id)
        .iter()
        .map(|&c| rebuild(src, c, out, origins))
        .collect();
    let value = src.value(id);
    let node = out.non_terminal(value, children);
    out.set_line(node, src.line(id));
    if let Some(arity) = call_arity(src, id) {
        let wrapper = out.non_terminal(vocab::num_args(arity), vec![node]);
        out.set_line(wrapper, src.line(id));
        return wrapper;
    }
    node
}

/// Number of arguments if `id` is a call-like or definition node.
fn call_arity(src: &Ast, id: NodeId) -> Option<usize> {
    let v = src.value(id);
    if v == vocab::call() || v == vocab::new_object() {
        // First child is the callee / constructed type.
        Some(src.children(id).len().saturating_sub(1))
    } else if v == vocab::function_def()
        || v == vocab::method_decl()
        || v == vocab::ctor_decl()
    {
        src.children(id)
            .iter()
            .find(|&&c| src.value(c) == vocab::params())
            .map(|&p| src.children(p).len())
    } else {
        None
    }
}

fn rebuild_terminal(src: &Ast, id: NodeId, out: &mut Ast, origins: &Origins) -> NodeId {
    let kind = src.term_kind(id).expect("terminal");
    let line = src.line(id);
    match kind {
        TermKind::Other => {
            let t = out.terminal(src.value(id), TermKind::Other);
            out.set_line(t, line);
            t
        }
        TermKind::Num | TermKind::Str | TermKind::Bool | TermKind::Null => {
            let token = match kind {
                TermKind::Num => vocab::num_token(),
                TermKind::Str => vocab::str_token(),
                TermKind::Bool => vocab::bool_token(),
                _ => vocab::none_token(),
            };
            let t = out.terminal(token, kind);
            out.set_line(t, line);
            let leaf = wrap_origin(out, t, origins.get(id));
            let st = out.non_terminal(vocab::num_st(1), vec![leaf]);
            out.set_line(st, line);
            st
        }
        TermKind::Ident => {
            let name = src.value(id);
            let parts = subtoken::split(name.as_str());
            let origin = origins.get(id);
            let role = src.role(id);
            let kids: Vec<NodeId> = parts
                .iter()
                .map(|p| {
                    let t = out.terminal(p.as_str(), TermKind::Ident);
                    out.set_role(t, role);
                    out.set_line(t, line);
                    wrap_origin(out, t, origin)
                })
                .collect();
            let st = out.non_terminal(vocab::num_st(parts.len()), kids);
            out.set_line(st, line);
            st
        }
    }
}

fn wrap_origin(out: &mut Ast, terminal: NodeId, origin: Option<Sym>) -> NodeId {
    match origin {
        Some(o) => {
            let line = out.line(terminal);
            let w = out.non_terminal(o, vec![terminal]);
            out.set_line(w, line);
            w
        }
        None => terminal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{python, stmt};

    fn plus_of(src: &str, origins: impl Fn(&Ast) -> Origins) -> Ast {
        let file = python::parse(src).unwrap();
        let s = &stmt::extract(&file)[0];
        let o = origins(&s.ast);
        to_ast_plus(&s.ast, &o)
    }

    fn plain(src: &str) -> String {
        let p = plus_of(src, |_| Origins::new());
        p.to_sexp(p.root())
    }

    #[test]
    fn figure2_shape_without_origins() {
        let s = plain("self.assertTrue(picture.rotate_angle, 90)\n");
        assert_eq!(
            s,
            "(ExprStmt (NumArgs(2) (Call (AttributeLoad (NameLoad (NumST(1) self)) \
             (Attr (NumST(2) assert True))) (AttributeLoad (NameLoad (NumST(1) picture)) \
             (Attr (NumST(2) rotate angle))) (Num (NumST(1) NUM)))))"
        );
    }

    #[test]
    fn figure2_shape_with_origins() {
        let p = plus_of("self.assertTrue(x, 90)\n", |ast| {
            let test_case = Sym::intern("TestCase");
            ast.iter()
                .filter(|&n| ast.is_terminal(n))
                .filter(|&n| {
                    let v = ast.value(n).as_str();
                    v == "self" || v == "assertTrue"
                })
                .map(|n| (n, test_case))
                .collect()
        });
        let s = p.to_sexp(p.root());
        assert!(s.contains("(NumST(1) (TestCase self))"), "{s}");
        assert!(s.contains("(NumST(2) (TestCase assert) (TestCase True))"), "{s}");
    }

    #[test]
    fn literals_are_abstracted() {
        let s = plain("x = 'hello'\n");
        assert!(s.contains("(Str (NumST(1) STR))"), "{s}");
        let s = plain("flag = True\n");
        assert!(s.contains("(Bool (NumST(1) BOOL))"), "{s}");
        let s = plain("v = None\n");
        assert!(s.contains("(NoneLit (NumST(1) NONE))"), "{s}");
    }

    #[test]
    fn num_args_counts_call_arguments() {
        assert!(plain("f()\n").contains("NumArgs(0)"));
        assert!(plain("f(a)\n").contains("NumArgs(1)"));
        assert!(plain("f(a, b, c)\n").contains("NumArgs(3)"));
    }

    #[test]
    fn num_args_on_definitions() {
        let file = python::parse("def evolve(self, a, **args):\n    pass\n").unwrap();
        let s = &stmt::extract(&file)[0];
        let p = to_ast_plus(&s.ast, &Origins::new());
        assert!(p.to_sexp(p.root()).contains("NumArgs(3)"));
    }

    #[test]
    fn subtokens_keep_roles() {
        let p = plus_of("self.assertTrue(x)\n", |_| Origins::new());
        let roles: Vec<_> = p
            .iter()
            .filter(|&n| p.is_terminal(n) && p.value(n).as_str() == "assert")
            .map(|n| p.role(n))
            .collect();
        assert_eq!(roles, [crate::NameRole::Function]);
    }

    #[test]
    fn nested_calls_each_get_num_args() {
        let s = plain("f(g(x))\n");
        assert_eq!(s.matches("NumArgs(1)").count(), 2);
    }

    #[test]
    fn operators_survive_untouched() {
        let s = plain("total += 1\n");
        assert!(s.contains("+="), "{s}");
    }

    #[test]
    fn origins_empty_is_identity_on_paths() {
        // w/o A: no origin nodes anywhere.
        let s = plain("self.run()\n");
        assert!(!s.contains("Object"), "{s}");
    }
}
