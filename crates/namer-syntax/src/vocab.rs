//! Canonical AST node value names.
//!
//! Both parsers and the AST+ transformation share one vocabulary of node
//! values so that the language-agnostic pattern miner sees a uniform tree
//! shape. The names follow Figure 2 of the paper (`Call`, `AttributeLoad`,
//! `NameLoad`, `Attr`, `Num`, `NumArgs(k)`, `NumST(k)`, `NUM`, …).

use crate::intern::Sym;

macro_rules! vocab {
    ($($(#[$doc:meta])* $fn_name:ident => $text:literal;)*) => {
        $(
            $(#[$doc])*
            pub fn $fn_name() -> Sym {
                Sym::intern($text)
            }
        )*
    };
}

vocab! {
    /// Root of a parsed file.
    module => "Module";
    /// Class definition header.
    class_def => "ClassDef";
    /// Function or method definition header.
    function_def => "FunctionDef";
    /// Formal parameter list.
    params => "Params";
    /// One formal parameter.
    param => "Param";
    /// `*args`-style variadic parameter.
    star_param => "StarParam";
    /// `**kwargs`-style keyword parameter.
    kw_param => "KwParam";
    /// Base-class / extends list.
    bases => "Bases";
    /// Assignment statement.
    assign => "Assign";
    /// Augmented assignment (`+=` and friends).
    aug_assign => "AugAssign";
    /// Expression statement.
    expr_stmt => "ExprStmt";
    /// `return` statement.
    return_stmt => "Return";
    /// `raise` / `throw` statement.
    raise_stmt => "Raise";
    /// `assert` statement.
    assert_stmt => "Assert";
    /// `del` statement.
    del_stmt => "Del";
    /// `pass` statement.
    pass_stmt => "Pass";
    /// `break` statement.
    break_stmt => "Break";
    /// `continue` statement.
    continue_stmt => "Continue";
    /// `import` statement.
    import_stmt => "Import";
    /// `from … import …` statement.
    import_from => "ImportFrom";
    /// Import alias (`as` clause).
    alias => "Alias";
    /// `if` header.
    if_stmt => "If";
    /// `while` header.
    while_stmt => "While";
    /// `for` header (also Java's enhanced for).
    for_stmt => "For";
    /// Classic three-clause Java `for`.
    for_classic => "ForClassic";
    /// `with` header.
    with_stmt => "With";
    /// `try` statement.
    try_stmt => "Try";
    /// One `except` / `catch` handler.
    handler => "Handler";
    /// `global` statement.
    global_stmt => "Global";
    /// Function / method call.
    call => "Call";
    /// Attribute read (`x.f` in load position).
    attribute_load => "AttributeLoad";
    /// Attribute write (`x.f = …`).
    attribute_store => "AttributeStore";
    /// Name read.
    name_load => "NameLoad";
    /// Name write.
    name_store => "NameStore";
    /// Name bound as a parameter.
    name_param => "NameParam";
    /// The attribute-name wrapper under an attribute node.
    attr => "Attr";
    /// Numeric literal wrapper.
    num => "Num";
    /// String literal wrapper.
    str_lit => "Str";
    /// Boolean literal wrapper.
    bool_lit => "Bool";
    /// `None` / `null` literal wrapper.
    none_lit => "NoneLit";
    /// Binary operation.
    bin_op => "BinOp";
    /// Unary operation.
    unary_op => "UnaryOp";
    /// Comparison chain.
    compare => "Compare";
    /// Boolean operation (`and` / `or` / `&&` / `||`).
    bool_op => "BoolOp";
    /// Subscript / array access.
    subscript => "Subscript";
    /// Slice expression.
    slice => "Slice";
    /// List literal.
    list_lit => "ListLit";
    /// Tuple literal.
    tuple_lit => "TupleLit";
    /// Dict / map literal.
    dict_lit => "DictLit";
    /// Set literal.
    set_lit => "SetLit";
    /// Lambda expression.
    lambda => "Lambda";
    /// Keyword argument at a call site.
    keyword_arg => "KeywordArg";
    /// `*expr` argument.
    starred => "Starred";
    /// `**expr` argument.
    double_starred => "DoubleStarred";
    /// Conditional expression / ternary.
    ternary => "Ternary";
    /// Comprehension (list/set/dict/generator).
    comprehension => "Comprehension";
    /// Decorator application.
    decorator => "Decorator";
    /// Java `new` object creation.
    new_object => "New";
    /// Java array creation.
    new_array => "NewArray";
    /// Java cast expression.
    cast => "Cast";
    /// Java `instanceof`.
    instance_of => "InstanceOf";
    /// Java local variable declaration.
    local_var => "LocalVar";
    /// Java field declaration.
    field_decl => "FieldDecl";
    /// Java method declaration.
    method_decl => "MethodDecl";
    /// Java constructor declaration.
    ctor_decl => "CtorDecl";
    /// Declared type reference.
    type_ref => "TypeRef";
    /// Java `throw`.
    throw_stmt => "Throw";
    /// Java `switch`.
    switch_stmt => "Switch";
    /// Java `synchronized` block header.
    synchronized_stmt => "Synchronized";
    /// Java package declaration.
    package_decl => "Package";
    /// Abstracted numeric literal (AST+ step 1).
    num_token => "NUM";
    /// Abstracted string literal (AST+ step 1).
    str_token => "STR";
    /// Abstracted boolean literal (AST+ step 1).
    bool_token => "BOOL";
    /// Abstracted null literal.
    none_token => "NONE";
    /// Origin value for objects the analysis could not resolve (⊤).
    object_top => "Object";
}

/// `NumArgs(k)` node value (AST+ step 2).
pub fn num_args(k: usize) -> Sym {
    Sym::intern(&format!("NumArgs({k})"))
}

/// `NumST(k)` node value (AST+ step 3).
pub fn num_st(k: usize) -> Sym {
    Sym::intern(&format!("NumST({k})"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parametric_values_format_like_the_paper() {
        assert_eq!(num_args(2).as_str(), "NumArgs(2)");
        assert_eq!(num_st(1).as_str(), "NumST(1)");
    }

    #[test]
    fn vocab_is_stable() {
        assert_eq!(call().as_str(), "Call");
        assert_eq!(attribute_load().as_str(), "AttributeLoad");
        assert_eq!(num_token().as_str(), "NUM");
    }
}
