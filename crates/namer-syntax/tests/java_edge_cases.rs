//! Java parser edge cases beyond the inline unit tests.

use namer_syntax::{java, stmt};

fn sexp(src: &str) -> String {
    let ast = java::parse(src).unwrap_or_else(|e| panic!("parse failed for {src:?}: {e}"));
    ast.to_sexp(ast.root())
}

fn in_method(body: &str) -> String {
    sexp(&format!("class A {{ void f() {{ {body} }} }}"))
}

#[test]
fn do_while_statement() {
    let s = in_method("do { step(); } while (running);");
    assert!(s.contains("(DoWhile (NameLoad running) (Body (ExprStmt (Call (NameLoad step)))))"), "{s}");
    assert!(!s.contains("Block"), "bare blocks are spliced: {s}");
}

#[test]
fn nested_ternary() {
    let s = in_method("int x = a ? 1 : b ? 2 : 3;");
    assert_eq!(s.matches("Ternary").count(), 2, "{s}");
}

#[test]
fn static_initializer_block() {
    let s = sexp("class A { static { setup(); } }");
    assert!(s.contains("(Initializer (Body (ExprStmt (Call (NameLoad setup)))))"), "{s}");
}

#[test]
fn varargs_method() {
    let s = sexp("class A { void log(String... parts) { } }");
    assert!(s.contains("(StarParam (TypeRef String) (NameParam parts))"), "{s}");
}

#[test]
fn labeled_break_and_continue() {
    let s = in_method("while (a) { break outer; }");
    assert!(s.contains("(Break)"), "{s}");
    let s = in_method("while (a) { continue outer; }");
    assert!(s.contains("(Continue)"), "{s}");
}

#[test]
fn multi_catch() {
    let s = in_method("try { run(); } catch (IOException | TimeoutException e) { }");
    assert!(s.contains("(Handler (TypeRef IOException) (TypeRef TimeoutException) (NameStore e)"), "{s}");
}

#[test]
fn nested_generics_shift_ambiguity() {
    let s = in_method("Map<String, Map<String, List<Integer>>> deep = build();");
    assert!(
        s.contains("(TypeRef Map (TypeRef String) (TypeRef Map (TypeRef String) (TypeRef List (TypeRef Integer))))"),
        "{s}"
    );
    // Shift operators still work.
    let s = in_method("int x = a >> 2;");
    assert!(s.contains("(BinOp (NameLoad a) >> (Num 2))"), "{s}");
}

#[test]
fn wildcard_generics() {
    let s = in_method("List<? extends Number> xs = make();");
    assert!(s.contains("(TypeRef List (TypeRef Number))"), "{s}");
}

#[test]
fn qualified_types_keep_simple_name() {
    let s = in_method("java.util.List items = fetch();");
    assert!(s.contains("(TypeRef List)"), "{s}");
}

#[test]
fn chained_calls_and_field_access() {
    let s = in_method("int n = config.getServer().getPort();");
    assert_eq!(s.matches("Call").count(), 2, "{s}");
    assert!(s.contains("(Attr getPort)"), "{s}");
}

#[test]
fn new_with_anonymous_class_body() {
    let s = in_method("Runnable r = new Runnable() { public void run() { } };");
    assert!(s.contains("(New (TypeRef Runnable))"), "{s}");
}

#[test]
fn array_of_arrays() {
    let s = in_method("int[][] grid = new int[3][4];");
    assert!(s.contains("(NewArray (TypeRef int) (Num 3) (Num 4))"), "{s}");
}

#[test]
fn array_initializer() {
    let s = in_method("int[] xs = new int[] {1, 2, 3};");
    assert!(s.contains("(ListLit (Num 1) (Num 2) (Num 3))"), "{s}");
}

#[test]
fn conditional_and_or_precedence() {
    let s = in_method("boolean b = x && y || z;");
    // (x && y) || z
    assert!(s.contains("(BoolOp (BoolOp (NameLoad x) && (NameLoad y)) || (NameLoad z))"), "{s}");
}

#[test]
fn prefix_and_postfix_mix() {
    let s = in_method("int x = ++a + b--;");
    assert_eq!(s.matches("UnaryOp").count(), 2, "{s}");
}

#[test]
fn string_concatenation() {
    let s = in_method("String msg = \"a\" + name + \"b\";");
    assert_eq!(s.matches("BinOp").count(), 2, "{s}");
}

#[test]
fn this_call_and_field() {
    let s = sexp("class A { int v; void f() { this.v = this.get(); } }");
    assert!(s.contains("(AttributeStore (NameLoad this) (Attr v))"), "{s}");
    assert!(s.contains("(Call (AttributeLoad (NameLoad this) (Attr get)))"), "{s}");
}

#[test]
fn super_method_call() {
    let s = in_method("super.validate();");
    assert!(s.contains("(Call (AttributeLoad (NameLoad super) (Attr validate)))"), "{s}");
}

#[test]
fn synchronized_method_body() {
    let s = in_method("synchronized (lock) { count++; }");
    assert!(s.contains("(Synchronized (NameLoad lock)"), "{s}");
}

#[test]
fn cast_of_call_result() {
    let s = in_method("String s = (String) box.get();");
    assert!(s.contains("(Cast (TypeRef String) (Call (AttributeLoad (NameLoad box) (Attr get))))"), "{s}");
}

#[test]
fn instanceof_in_condition() {
    let s = in_method("if (o instanceof List && ready) { use(o); }");
    assert!(s.contains("(InstanceOf (NameLoad o) (TypeRef List))"), "{s}");
}

#[test]
fn class_literal_access() {
    let s = in_method("Class<?> c = String.class;");
    assert!(s.contains("(AttributeLoad (NameLoad String) (Attr class))"), "{s}");
}

#[test]
fn interface_with_default_method() {
    let s = sexp("interface I { default int size() { return 0; } }");
    assert!(s.contains("(MethodDecl (TypeRef int) (NameStore size) (Params) (Return (Num 0)))"), "{s}");
}

#[test]
fn enum_with_members() {
    let s = sexp("enum State { ON, OFF; public boolean active() { return true; } }");
    assert!(s.contains("(NameStore ON)"), "{s}");
    assert!(s.contains("(MethodDecl (TypeRef boolean) (NameStore active)"), "{s}");
}

#[test]
fn nested_class_extraction() {
    let src = "class Outer { class Inner { void m() { helper(); } } }";
    let ast = java::parse(src).unwrap();
    let stmts = stmt::extract(&ast);
    let classes = stmts
        .iter()
        .filter(|s| s.ast.value(s.ast.root()).as_str() == "ClassDef")
        .count();
    assert_eq!(classes, 2);
    let inner_method = stmts
        .iter()
        .find(|s| s.to_sexp().contains("(NameStore m)"))
        .expect("method extracted");
    assert_eq!(inner_method.enclosing_class.unwrap().as_str(), "Inner");
}

#[test]
fn switch_with_fallthrough_cases() {
    let s = in_method("switch (x) { case 1: case 2: both(); break; default: other(); }");
    assert!(s.contains("Switch"), "{s}");
    assert!(s.contains("(Call (NameLoad both))"), "{s}");
}

#[test]
fn hex_and_long_literals() {
    let s = in_method("long mask = 0xFF; long big = 10000000000L;");
    assert!(s.contains("(Num 0xFF)"), "{s}");
    assert!(s.contains("(Num 10000000000L)"), "{s}");
}

#[test]
fn empty_class_and_interface() {
    assert!(sexp("class Empty { }").contains("(ClassDef (NameStore Empty) (Bases))"));
    assert!(sexp("interface Marker { }").contains("(ClassDef (NameStore Marker) (Bases))"));
}

#[test]
fn generic_method_declaration() {
    let s = sexp("class A { <T> T identity(T value) { return value; } }");
    assert!(s.contains("(MethodDecl (TypeRef T) (NameStore identity)"), "{s}");
}

#[test]
fn annotations_on_members_and_params() {
    let s = sexp("class A { @Override public void f(@NonNull String s) { } }");
    assert!(s.contains("(MethodDecl (TypeRef void) (NameStore f) (Params (Param (TypeRef String) (NameParam s))))"), "{s}");
}
