//! Property-based tests for the syntax substrate.

use namer_syntax::namepath::NamePath;
use namer_syntax::{namepath, python, stmt, subtoken, transform, Sym};
use proptest::prelude::*;

const PY_KEYWORDS: &[&str] = &[
    "and", "or", "not", "in", "is", "if", "else", "elif", "for", "while", "def", "class",
    "return", "pass", "break", "continue", "import", "from", "as", "with", "try", "except",
    "finally", "raise", "assert", "del", "global", "lambda", "yield", "await", "async",
    "nonlocal",
];

/// Strategy: plausible identifier strings (never Python keywords).
fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,6}(_[a-z0-9]{1,6}){0,3}"
        .prop_filter("not a keyword", |s| {
            s.split('_').all(|part| !PY_KEYWORDS.contains(&part))
        })
}

/// Strategy: camelCase identifiers (head never a Python keyword).
fn camel_ident() -> impl Strategy<Value = String> {
    ("[a-z]{1,6}", proptest::collection::vec("[A-Z][a-z]{1,5}", 0..4))
        .prop_map(|(head, tail)| head + &tail.concat())
        .prop_filter("head is not a keyword", |s| {
            !PY_KEYWORDS.iter().any(|k| s == k || s.starts_with(&format!("{k}_")))
                && !PY_KEYWORDS.contains(&s.as_str())
        })
}

proptest! {
    #[test]
    fn split_preserves_all_alphanumerics(name in ident()) {
        let parts = subtoken::split(&name);
        let glued: String = parts.concat();
        let expected: String = name.chars().filter(|c| *c != '_').collect();
        // For underscore-only names the original is returned verbatim.
        if !expected.is_empty() {
            prop_assert_eq!(glued, expected);
        }
    }

    #[test]
    fn split_count_agrees(name in camel_ident()) {
        prop_assert_eq!(subtoken::count(&name), subtoken::split(&name).len());
    }

    #[test]
    fn split_is_idempotent_on_subtokens(name in camel_ident()) {
        for part in subtoken::split(&name) {
            // A subtoken has no further camel/snake boundaries except
            // acronym runs, which stay stable under re-splitting.
            let again = subtoken::split(&part);
            prop_assert_eq!(again.concat(), part);
        }
    }

    #[test]
    fn assignments_parse_and_extract(lhs in ident(), rhs in ident()) {
        let src = format!("{lhs} = {rhs}\n");
        let ast = python::parse(&src).expect("simple assignment parses");
        let stmts = stmt::extract(&ast);
        prop_assert_eq!(stmts.len(), 1);
        let plus = transform::to_ast_plus(&stmts[0].ast, &transform::Origins::new());
        let paths = namepath::extract(&plus, 10);
        // One path per subtoken of each side.
        let expected = subtoken::count(&lhs) + subtoken::count(&rhs);
        prop_assert_eq!(paths.len(), expected.min(10));
        // All extracted paths are concrete with pairwise-distinct prefixes.
        for (i, a) in paths.iter().enumerate() {
            prop_assert!(a.is_concrete());
            for b in paths.iter().skip(i + 1) {
                prop_assert!(!a.same_prefix(b));
            }
        }
    }

    #[test]
    fn method_calls_parse(recv in ident(), method in camel_ident(), arg in ident()) {
        let src = format!("{recv}.{method}({arg}, 7)\n");
        let ast = python::parse(&src).expect("call parses");
        let sexp = ast.to_sexp(ast.root());
        prop_assert!(sexp.contains("Call"));
        let attr = format!("(Attr {method})");
        prop_assert!(sexp.contains(&attr));
    }

    #[test]
    fn path_eq_is_reflexive_and_epsilon_absorbs(prefix_len in 1usize..5, end in ident()) {
        let prefix: Vec<(Sym, u32)> = (0..prefix_len)
            .map(|i| (Sym::intern(&format!("N{i}")), i as u32))
            .collect();
        let concrete = NamePath::concrete(prefix.clone(), Sym::intern(&end));
        let symbolic = NamePath::symbolic(prefix);
        prop_assert!(concrete.path_eq(&concrete));
        prop_assert!(concrete.path_eq(&symbolic));
        prop_assert!(symbolic.path_eq(&concrete));
        prop_assert!(concrete.same_prefix(&symbolic));
    }

    #[test]
    fn digest_is_stable_across_reparses(a in ident(), b in ident()) {
        let src = format!("{a} = load({b})\n");
        let one = python::parse(&src).expect("parses");
        let two = python::parse(&src).expect("parses");
        prop_assert_eq!(one.digest(one.root()), two.digest(two.root()));
    }

    #[test]
    fn parser_never_panics_on_ascii_soup(src in "[ a-z0-9_().:=\\n]{0,80}") {
        // Errors are fine; panics are not.
        let _ = python::parse(&src);
        let _ = namer_syntax::java::parse(&src);
    }
}
