//! Python parser edge cases beyond the inline unit tests.

use namer_syntax::{python, stmt};

fn sexp(src: &str) -> String {
    let ast = python::parse(src).unwrap_or_else(|e| panic!("parse failed for {src:?}: {e}"));
    ast.to_sexp(ast.root())
}

#[test]
fn chained_method_calls() {
    let s = sexp("result = builder.add(1).add(2).build()\n");
    assert_eq!(s.matches("Call").count(), 3, "{s}");
    assert!(s.contains("(Attr build)"), "{s}");
}

#[test]
fn deeply_nested_calls() {
    let s = sexp("x = f(g(h(i(j(1)))))\n");
    assert_eq!(s.matches("Call").count(), 5, "{s}");
}

#[test]
fn decorator_with_arguments() {
    let s = sexp("@app.route('/home', methods=['GET'])\ndef home():\n    pass\n");
    assert!(s.contains("(Decorator (Call (AttributeLoad (NameLoad app) (Attr route))"), "{s}");
    assert!(s.contains("(KeywordArg methods"), "{s}");
}

#[test]
fn multiple_decorators() {
    let s = sexp("@first\n@second\ndef f():\n    pass\n");
    assert_eq!(s.matches("Decorator").count(), 2, "{s}");
}

#[test]
fn while_with_else() {
    let s = sexp("while x:\n    step()\nelse:\n    done()\n");
    assert!(s.contains("(While (NameLoad x) (Body (ExprStmt (Call (NameLoad step)))) (OrElse (ExprStmt (Call (NameLoad done)))))"), "{s}");
}

#[test]
fn try_with_finally_only() {
    let s = sexp("try:\n    run()\nfinally:\n    close()\n");
    assert!(s.contains("(Finally (ExprStmt (Call (NameLoad close))))"), "{s}");
}

#[test]
fn try_except_else_finally() {
    let s = sexp(
        "try:\n    run()\nexcept IOError as e:\n    log(e)\nelse:\n    ok()\nfinally:\n    close()\n",
    );
    assert!(s.contains("(Handler (NameLoad IOError) (NameStore e)"), "{s}");
    assert!(s.contains("(OrElse (ExprStmt (Call (NameLoad ok))))"), "{s}");
    assert!(s.contains("(Finally"), "{s}");
}

#[test]
fn nested_comprehension() {
    let s = sexp("m = [[y for y in row] for row in grid]\n");
    assert_eq!(s.matches("Comprehension").count(), 2, "{s}");
}

#[test]
fn dict_comprehension() {
    let s = sexp("d = {k: v for k, v in items}\n");
    assert!(s.contains("Comprehension"), "{s}");
}

#[test]
fn generator_argument() {
    let s = sexp("total = sum(x * x for x in xs)\n");
    assert!(s.contains("(Call (NameLoad sum) (Comprehension"), "{s}");
}

#[test]
fn conditional_comprehension() {
    let s = sexp("xs = [x for x in ys if x > 0 if x < 10]\n");
    assert_eq!(s.matches("Compare").count(), 2, "{s}");
}

#[test]
fn lambda_with_default_and_star() {
    let s = sexp("f = lambda a, b=2, *rest: a\n");
    assert!(s.contains("(Param (NameParam b) (Num 2))"), "{s}");
    assert!(s.contains("(StarParam (NameParam rest))"), "{s}");
}

#[test]
fn slices_with_steps() {
    let s = sexp("y = xs[1:10:2]\n");
    assert!(s.contains("(Slice (Num 1) (Num 10) (Num 2))"), "{s}");
    let s = sexp("y = xs[::2]\n");
    assert!(s.contains("(Slice (Num 2))"), "{s}");
}

#[test]
fn adjacent_string_concatenation() {
    let ast = python::parse("s = 'one' 'two'\n").unwrap();
    let s = ast.to_sexp(ast.root());
    assert!(s.contains("onetwo"), "{s}");
}

#[test]
fn unary_chains() {
    let s = sexp("x = --y\n");
    assert_eq!(s.matches("UnaryOp").count(), 2, "{s}");
    let s = sexp("b = not not ok\n");
    assert_eq!(s.matches("UnaryOp").count(), 2, "{s}");
}

#[test]
fn power_operator_associativity() {
    let s = sexp("x = 2 ** 3 ** 4\n");
    // Right associative: 2 ** (3 ** 4).
    assert!(s.contains("(BinOp (Num 2) ** (BinOp (Num 3) ** (Num 4)))"), "{s}");
}

#[test]
fn augmented_assign_to_attribute() {
    let s = sexp("self.count += 1\n");
    assert!(s.contains("(AugAssign (AttributeStore (NameLoad self) (Attr count)) += (Num 1))"), "{s}");
}

#[test]
fn tuple_unpacking_assignment() {
    let s = sexp("a, b = b, a\n");
    assert!(s.contains("(Assign (TupleLit (NameStore a) (NameStore b)) (TupleLit (NameLoad b) (NameLoad a)))"), "{s}");
}

#[test]
fn starred_assignment_target_value() {
    let s = sexp("xs = [*left, *right]\n");
    assert_eq!(s.matches("Starred").count(), 2, "{s}");
}

#[test]
fn with_multiple_context_managers() {
    let s = sexp("with open(a) as f, open(b) as g:\n    pass\n");
    assert!(s.contains("(NameStore f)"), "{s}");
    assert!(s.contains("(NameStore g)"), "{s}");
}

#[test]
fn annotated_assignment() {
    let s = sexp("count: int = 0\n");
    assert!(s.contains("(Assign (NameStore count) (NameLoad int) (Num 0))"), "{s}");
}

#[test]
fn async_def_and_await() {
    let s = sexp("async def fetch(url):\n    data = await get(url)\n    return data\n");
    assert!(s.contains("(FunctionDef (NameStore fetch)"), "{s}");
    assert!(s.contains("Await"), "{s}");
}

#[test]
fn keyword_only_params() {
    let s = sexp("def f(a, *, b=1):\n    return b\n");
    assert!(s.contains("(Param (NameParam b) (Num 1))"), "{s}");
}

#[test]
fn statement_extraction_depth() {
    let src = "class A:\n    class B:\n        def m(self):\n            if x:\n                for i in range(3):\n                    total += i\n";
    let ast = python::parse(src).unwrap();
    let stmts = stmt::extract(&ast);
    let kinds: Vec<String> = stmts
        .iter()
        .map(|s| s.ast.value(s.ast.root()).to_string())
        .collect();
    assert!(kinds.contains(&"ClassDef".to_owned()));
    assert!(kinds.contains(&"FunctionDef".to_owned()));
    assert!(kinds.contains(&"If".to_owned()));
    assert!(kinds.contains(&"For".to_owned()));
    assert!(kinds.contains(&"AugAssign".to_owned()));
    // Nested classes both extracted.
    assert_eq!(kinds.iter().filter(|k| *k == "ClassDef").count(), 2);
}

#[test]
fn semicolon_separated_statements() {
    let ast = python::parse("a = 1; b = 2; c = 3\n").unwrap();
    let stmts = stmt::extract(&ast);
    assert_eq!(stmts.len(), 3);
    assert_eq!(stmts[0].line, 1);
}

#[test]
fn inline_suite() {
    let s = sexp("if ready: launch()\n");
    assert!(s.contains("(If (NameLoad ready) (Body (ExprStmt (Call (NameLoad launch)))))"), "{s}");
}

#[test]
fn print_as_function() {
    let s = sexp("print('hello', sep=', ')\n");
    assert!(s.contains("(Call (NameLoad print)"), "{s}");
}

#[test]
fn comparison_operator_variants() {
    for (src, op) in [
        ("a is b\n", "is"),
        ("a is not b\n", "is"),
        ("a not in b\n", "not in"),
        ("a in b\n", "in"),
    ] {
        let s = sexp(src);
        assert!(s.contains(&format!("(Compare (NameLoad a) {op} (NameLoad b))")), "{src:?} → {s}");
    }
}

#[test]
fn empty_module_parses() {
    let ast = python::parse("").unwrap();
    assert_eq!(ast.children(ast.root()).len(), 0);
    assert!(stmt::extract(&ast).is_empty());
}

#[test]
fn comment_only_module_parses() {
    let ast = python::parse("# nothing here\n# at all\n").unwrap();
    assert_eq!(ast.children(ast.root()).len(), 0);
}

#[test]
fn crlf_line_endings() {
    let ast = python::parse("a = 1\r\nb = 2\r\n").unwrap();
    assert_eq!(stmt::extract(&ast).len(), 2);
}
