//! End-to-end JavaScript bug hunt: the third registered frontend riding
//! the unchanged pipeline — camelCase subtoken splitting, implicit-`this`
//! receiver binding, and the same mining/classification stack.
//!
//! ```sh
//! cargo run --release --example js_bug_hunt
//! ```

use namer::core::{Namer, NamerBuilder, NamerConfig};
use namer::corpus::{CorpusConfig, Generator, Severity};
use namer::patterns::MiningConfig;
use namer::syntax::Lang;

fn main() {
    let corpus = Generator::new(CorpusConfig::small(Lang::Js)).generate(17);
    let oracle = corpus.oracle();
    let commits: Vec<(String, String)> = corpus
        .commits
        .iter()
        .map(|c| (c.before.clone(), c.after.clone()))
        .collect();

    let config = NamerConfig {
        mining: MiningConfig {
            min_path_count: 4,
            min_support: 15,
            ..MiningConfig::default()
        },
        labeled_per_class: 15,
        ..NamerConfig::default()
    };
    let namer = Namer::train(
        &corpus.files,
        &commits,
        |v| {
            oracle
                .label(&v.repo, &v.path, v.line, v.original.as_str(), v.suggested.as_str())
                .is_some()
        },
        &config,
    );

    let mut session = NamerBuilder::new()
        .namer(namer)
        .build()
        .expect("a trained system always builds");
    let reports = session
        .run(&corpus.files)
        .expect("cacheless runs cannot fail")
        .reports;
    let mut semantic = 0;
    let mut quality = 0;
    let mut fp = 0;
    for r in &reports {
        match oracle.label(
            &r.violation.repo,
            &r.violation.path,
            r.violation.line,
            r.violation.original.as_str(),
            r.violation.suggested.as_str(),
        ) {
            Some(cat) if cat.severity() == Severity::SemanticDefect => semantic += 1,
            Some(_) => quality += 1,
            None => fp += 1,
        }
    }
    println!(
        "JavaScript: {} reports — {semantic} semantic defects, {quality} code quality issues, {fp} false positives",
        reports.len()
    );
    for r in reports.iter().take(10) {
        println!(
            "  {}:{} [{}] `{}` → `{}`",
            r.violation.path,
            r.violation.line,
            r.violation.pattern_ty,
            r.violation.original,
            r.violation.suggested
        );
    }
}
