//! Pattern mining in isolation: mine confusing word pairs from a commit
//! history and name patterns from a corpus, then print the most supported
//! patterns — the interpretable rules §3.2–§3.3 are about.
//!
//! ```sh
//! cargo run --release --example mine_patterns
//! ```

use namer::core::{process, Detector, ProcessConfig, ScanRequest};
use namer::corpus::{CorpusConfig, Generator};
use namer::patterns::MiningConfig;
use namer::syntax::Lang;

fn main() {
    let corpus = Generator::new(CorpusConfig::small(Lang::Python)).generate(23);
    let commits: Vec<(String, String)> = corpus
        .commits
        .iter()
        .map(|c| (c.before.clone(), c.after.clone()))
        .collect();

    let processed = process(&corpus.files, &ProcessConfig::default());
    println!(
        "processed {} files / {} statements ({} parse failures)",
        processed.files.len(),
        processed.stmt_count(),
        processed.parse_failures
    );

    let config = MiningConfig {
        min_path_count: 4,
        min_support: 15,
        ..MiningConfig::default()
    };
    let detector = Detector::mine(&processed, &commits, Lang::Python, &config);

    println!("\ntop confusing word pairs (⟨mistaken, correct⟩, count):");
    let mut pairs: Vec<_> = detector.pairs.iter().collect();
    pairs.sort_by(|a, b| b.1.cmp(a.1));
    for ((w1, w2), n) in pairs.into_iter().take(10) {
        println!("  ⟨{w1}, {w2}⟩ × {n}");
    }

    println!("\nmost supported name patterns:");
    for (i, p) in detector.patterns.patterns.iter().take(5).enumerate() {
        println!("--- pattern {i} (matches {}, satisfaction rate {:.2})", p.matches, p.satisfaction_rate());
        print!("{p}");
    }

    let scan = detector.scan(ScanRequest::full(&processed));
    println!(
        "\nscan: {} report candidates over {} files ({} with ≥1 violation)",
        scan.violations.len(),
        scan.files_scanned,
        scan.files_with_violation
    );
}
