//! The §5.6 experiment in miniature: train the GGNN baseline on synthetic
//! variable misuse, confirm it learns that distribution, then watch it fail
//! on the corpus's *real* injected naming issues — the distribution-mismatch
//! phenomenon that motivates Namer's design.
//!
//! ```sh
//! cargo run --release --example nn_baselines
//! ```

use namer::corpus::{CorpusConfig, Generator};
use namer::nn::{build_vocab, make_samples, scan, top_reports, Arch, Model, ModelConfig};
use namer::syntax::Lang;

fn main() {
    let corpus = Generator::new(CorpusConfig::small(Lang::Python)).generate(99);
    let oracle = corpus.oracle();
    println!(
        "corpus: {} files, {} real injected issues",
        corpus.files.len(),
        corpus.injections.len()
    );

    let vocab = build_vocab(&corpus.files, 512);
    let config = ModelConfig {
        epochs: 6,
        max_nodes: 200,
        lr: 5e-3,
        ..ModelConfig::default()
    };
    let train = make_samples(&corpus.files, &vocab, 400, 0.5, config.max_nodes, 1);
    let test = make_samples(&corpus.files, &vocab, 150, 0.5, config.max_nodes, 2);

    let mut model = Model::new(Arch::Ggnn, vocab.size(), config);
    let loss = model.train(&train);
    let acc = model.accuracy(&test);
    println!(
        "GGNN after training (loss {loss:.2}): synthetic classification {:.0}%, localization {:.0}%, repair {:.0}%",
        acc.classification * 100.0,
        acc.localization * 100.0,
        acc.repair * 100.0
    );

    // Now scan the REAL (uncorrupted) corpus.
    let reports = top_reports(scan(&model, &corpus.files, &vocab), 20);
    let mut true_hits = 0;
    for r in &reports {
        let f = &corpus.files[r.file_idx];
        if oracle
            .label(&f.repo, &f.path, r.line, r.original.as_str(), r.suggested.as_str())
            .is_some()
        {
            true_hits += 1;
        }
    }
    println!(
        "on real issues: {} reports, {} true → precision {:.0}%",
        reports.len(),
        true_hits,
        100.0 * true_hits as f64 / reports.len().max(1) as f64
    );
    println!("\nThe paper's §5.6 finding: high synthetic accuracy does not transfer —\nthe synthetic-bug distribution is not the real-issue distribution.");
}
