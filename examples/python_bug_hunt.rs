//! End-to-end Python bug hunt on a synthetic Big Code corpus.
//!
//! ```sh
//! cargo run --release --example python_bug_hunt
//! ```
//!
//! Generates a corpus (standing in for the paper's GitHub dataset), trains
//! the full Namer system — pattern mining from the unlabeled corpus and its
//! commit history, plus a defect classifier on a small labeled violation
//! set — and prints the issues it reports, scored against the generator's
//! ground truth.

use namer::core::{Namer, NamerBuilder, NamerConfig};
use namer::corpus::{CorpusConfig, Generator};
use namer::patterns::MiningConfig;
use namer::syntax::Lang;

fn main() {
    let corpus = Generator::new(CorpusConfig::small(Lang::Python)).generate(7);
    let oracle = corpus.oracle();
    let commits: Vec<(String, String)> = corpus
        .commits
        .iter()
        .map(|c| (c.before.clone(), c.after.clone()))
        .collect();
    println!(
        "corpus: {} files, {} repos, {} injected issues, {} fix commits",
        corpus.files.len(),
        corpus.repo_count(),
        corpus.injections.len(),
        corpus.commits.len()
    );

    let config = NamerConfig {
        mining: MiningConfig {
            min_path_count: 4,
            min_support: 15,
            ..MiningConfig::default()
        },
        labeled_per_class: 15,
        ..NamerConfig::default()
    };
    let namer = Namer::train(
        &corpus.files,
        &commits,
        |v| {
            oracle
                .label(&v.repo, &v.path, v.line, v.original.as_str(), v.suggested.as_str())
                .is_some()
        },
        &config,
    );
    println!(
        "mined {} patterns, {} confusing pairs; classifier: {} (CV accuracy {:.0}%)",
        namer.detector.pattern_count(),
        namer.detector.pairs.len(),
        namer.model_kind,
        namer.cv_metrics.accuracy * 100.0
    );

    let mut session = NamerBuilder::new()
        .namer(namer)
        .build()
        .expect("a trained system always builds");
    let reports = session
        .run(&corpus.files)
        .expect("cacheless runs cannot fail")
        .reports;
    let mut tp = 0;
    println!("\nreports:");
    for r in &reports {
        let verdict = match oracle.label(
            &r.violation.repo,
            &r.violation.path,
            r.violation.line,
            r.violation.original.as_str(),
            r.violation.suggested.as_str(),
        ) {
            Some(cat) => {
                tp += 1;
                format!("TRUE ISSUE ({cat})")
            }
            None => "false positive".to_owned(),
        };
        println!(
            "  {}:{} `{}` → `{}`  [{verdict}]",
            r.violation.path, r.violation.line, r.violation.original, r.violation.suggested
        );
    }
    println!(
        "\nprecision: {}/{} = {:.0}%",
        tp,
        reports.len(),
        100.0 * tp as f64 / reports.len().max(1) as f64
    );
}
