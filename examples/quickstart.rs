//! Quickstart: the Figure 2 walkthrough on a single snippet.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Parses the paper's `TestPicture` example, runs the §4.1 analyses, builds
//! the AST+, extracts name paths, and checks the statement against a
//! Figure 2 (e)-style pattern.

use namer::analysis::{AnalysisConfig, FileAnalysis};
use namer::patterns::{NamePattern, Relation};
use namer::syntax::{namepath, python, stmt, transform, Lang, Sym};

fn main() {
    let src = "\
class TestPicture(TestCase):
    def test_angle_picture(self):
        for picture in self.slide.pictures:
            self.assertTrue(picture.rotate_angle, 90)
";
    let ast = python::parse(src).expect("snippet parses");
    let analysis = FileAnalysis::analyze(&ast, Lang::Python, &AnalysisConfig::default());

    let statement = stmt::extract(&ast)
        .into_iter()
        .find(|s| s.to_sexp().contains("assertTrue"))
        .expect("assert statement found");
    let origins = analysis.origins_for(&statement);
    let plus = transform::to_ast_plus(&statement.ast, &origins);
    println!("AST+: {}\n", plus.to_sexp(plus.root()));

    let paths = namepath::extract(&plus, 10);
    println!("name paths:");
    for p in &paths {
        println!("  {p}");
    }

    let find = |end: &str| {
        paths
            .iter()
            .find(|p| p.end_str() == Some(end))
            .unwrap_or_else(|| panic!("path ending in {end}"))
            .clone()
    };
    let mut deduction = find("True");
    deduction.end = Some(Sym::intern("Equal"));
    let pattern =
        NamePattern::confusing_word(vec![find("self"), find("assert"), find("NUM")], deduction);

    match pattern.relation(&paths) {
        Relation::Violated(v) => println!(
            "\nnaming issue: replace `{}` with `{}` — assertTrue(x, 90) should be assertEqual(x, 90)",
            v.original, v.suggested
        ),
        other => println!("\nunexpected: {other:?}"),
    }
}
