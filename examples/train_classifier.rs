//! The small-supervision half in isolation: extract Table 1 features for
//! violations, label a small balanced set, run cross-validated model
//! selection (SVM / LogReg / LDA), and read the learned feature weights.
//!
//! ```sh
//! cargo run --release --example train_classifier
//! ```

use namer::core::{Namer, NamerConfig, FEATURE_NAMES};
use namer::corpus::{CorpusConfig, Generator};
use namer::patterns::MiningConfig;
use namer::syntax::Lang;

fn main() {
    let corpus = Generator::new(CorpusConfig::small(Lang::Python)).generate(31);
    let oracle = corpus.oracle();
    let commits: Vec<(String, String)> = corpus
        .commits
        .iter()
        .map(|c| (c.before.clone(), c.after.clone()))
        .collect();

    let config = NamerConfig {
        mining: MiningConfig {
            min_path_count: 4,
            min_support: 15,
            ..MiningConfig::default()
        },
        labeled_per_class: 15,
        cv_repeats: 30,
        ..NamerConfig::default()
    };
    let namer = Namer::train(
        &corpus.files,
        &commits,
        |v| {
            oracle
                .label(&v.repo, &v.path, v.line, v.original.as_str(), v.suggested.as_str())
                .is_some()
        },
        &config,
    );

    println!(
        "labeled set: {} violations; selected model: {}",
        namer.training_set.len(),
        namer.model_kind
    );
    println!(
        "30× 80/20 validation: accuracy {:.0}% precision {:.0}% recall {:.0}% F1 {:.0}%",
        namer.cv_metrics.accuracy * 100.0,
        namer.cv_metrics.precision * 100.0,
        namer.cv_metrics.recall * 100.0,
        namer.cv_metrics.f1 * 100.0
    );

    if let Some(weights) = namer.feature_weights() {
        println!("\nlearned feature weights (standardised feature space):");
        for (w, name) in weights.iter().zip(FEATURE_NAMES.iter()) {
            println!("  {w:+.4}  {name}");
        }
    }
}
