#!/usr/bin/env bash
# Full local gate: build, every test (incl. the bench_incremental smoke
# test), and clippy with warnings denied. CI and pre-push both run this.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
