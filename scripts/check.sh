#!/usr/bin/env bash
# Full local gate: build, every test (incl. the bench_incremental and
# bench_shard smoke tests), clippy with warnings denied, a quick run of the
# sharding benchmark (its exit code enforces the byte-identical guarantee),
# a CLI metrics smoke (train + scan with --metrics-out, validating the JSON
# key set of DESIGN.md §10), a format smoke (binary model reload + registry
# scans must be byte-identical, DESIGN.md §12), a serve smoke (spawn the
# JSON-RPC daemon, handshake, analyze, shutdown, DESIGN.md §13), a watch
# smoke (touch one line under `namer watch`, expect a findings diff and
# statement-region splicing, DESIGN.md §14), a quick incremental benchmark
# (its exit code enforces both byte-identity and the statement-splicing
# speedup over the file-granular baseline), and rustdoc with warnings
# denied (catches doc drift and broken intra-doc links). CI and pre-push
# both run this.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
# Fast gates: the binary-container unit tests (DESIGN.md §12) and the
# serve protocol unit tests (DESIGN.md §13) run first so a format or wire
# regression fails in seconds, before the full workspace suite.
cargo test -q -p namer-core binfmt
cargo test -q -p namer-serve serve_
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo run --release -p namer-bench --bin bench_shard -- --quick --out /tmp/BENCH_shard_check.json
# Exits non-zero if any phase diverges from its full-scan reference or the
# 1-line-dirty region phase fails to beat the warm file-granular baseline.
cargo run --release -p namer-bench --bin bench_incremental -- --quick --out /tmp/BENCH_incremental_check.json

# Metrics smoke: corpus -> train -> scan --metrics-out, then check the
# snapshot carries the full §10 key set. scan exits 1 when it finds issues,
# which the synthetic corpus is built to contain — tolerate exactly that.
smoke=$(mktemp -d)
trap 'rm -rf "$smoke"' EXIT
target/release/namer corpus --out "$smoke/playground" --seed 7
target/release/namer train \
    --corpus "$smoke/playground/repos" \
    --commits "$smoke/playground/fixes" \
    --labels "$smoke/playground/labels.tsv" \
    -o "$smoke/model.json"
scan_rc=0
target/release/namer scan --model "$smoke/model.json" \
    --metrics-out "$smoke/metrics.json" \
    "$smoke/playground/repos" >/dev/null || scan_rc=$?
if [ "$scan_rc" -gt 1 ]; then
    echo "check.sh: metrics smoke scan failed (exit $scan_rc)" >&2
    exit "$scan_rc"
fi
for key in schema_version counters phases shard_busy_nanos shard_imbalance \
           files_scanned statements_scanned pattern_matches cache_hits \
           cache_degraded_cold detect process scan assemble classify; do
    grep -q "\"$key\"" "$smoke/metrics.json" || {
        echo "check.sh: metrics.json missing key \"$key\"" >&2
        exit 1
    }
done
echo "metrics smoke: ok ($smoke/metrics.json validated)"

# JS smoke: the third-language frontend end-to-end — corpus -> train ->
# scan entirely in JavaScript, through the same Language-trait seam the
# Python/Java paths use. The synthetic JS corpus contains injected issues,
# so scan exiting 1 is the expected success mode.
target/release/namer corpus --js --out "$smoke/js-playground" --seed 11
target/release/namer train --js \
    --corpus "$smoke/js-playground/repos" \
    --commits "$smoke/js-playground/fixes" \
    --labels "$smoke/js-playground/labels.tsv" \
    -o "$smoke/js-model.json"
js_rc=0
target/release/namer scan --model "$smoke/js-model.json" \
    "$smoke/js-playground/repos" > "$smoke/js-findings.txt" 2>/dev/null || js_rc=$?
if [ "$js_rc" -gt 1 ]; then
    echo "check.sh: JS smoke scan failed (exit $js_rc)" >&2
    exit "$js_rc"
fi
echo "js smoke: ok (JavaScript corpus -> train -> scan completed)"

# Language-dispatch gate: every per-language `match` lives in the registry
# module (crates/namer-syntax/src/lang.rs). Any other `match <expr>lang`
# means a frontend grew a second dispatch site — reject it.
if grep -rnE 'match [a-zA-Z_.]*lang\b' --include='*.rs' src crates tests \
    | grep -v 'crates/namer-syntax/src/lang.rs'; then
    echo "check.sh: language dispatch found outside the registry module" >&2
    exit 1
fi
echo "lang dispatch gate: ok (registry-only dispatch)"

# Fault smoke (DESIGN.md §11): salt the corpus with hostile inputs — a
# non-UTF-8 source and a dangling symlink — and scan over a truncated
# cache. The scan must complete (exit 0 or 1, never crash), quarantine the
# bad inputs, degrade the damaged cache to cold, and still emit valid
# metrics JSON.
printf '\xc3\x28\xff\xfe' > "$smoke/playground/repos/binary.py"
ln -s missing-target.py "$smoke/playground/repos/dangling.py"
mkdir -p "$smoke/cache"
target/release/namer scan --model "$smoke/model.json" \
    --cache-dir "$smoke/cache" \
    "$smoke/playground/repos" >/dev/null 2>&1 || true
head -c 40 "$smoke/cache/scan-cache.json" > "$smoke/cache/scan-cache.json.trunc"
mv "$smoke/cache/scan-cache.json.trunc" "$smoke/cache/scan-cache.json"
fault_rc=0
target/release/namer scan --model "$smoke/model.json" \
    --cache-dir "$smoke/cache" \
    --metrics-out "$smoke/fault-metrics.json" \
    "$smoke/playground/repos" >/dev/null 2>"$smoke/fault-stderr.txt" || fault_rc=$?
if [ "$fault_rc" -gt 1 ]; then
    echo "check.sh: fault smoke scan crashed (exit $fault_rc)" >&2
    cat "$smoke/fault-stderr.txt" >&2
    exit "$fault_rc"
fi
grep -Eq '"quarantined_files": *[1-9]' "$smoke/fault-metrics.json" || {
    echo "check.sh: fault smoke quarantined nothing" >&2
    exit 1
}
grep -Eq '"cache_degraded_cold": *[1-9]' "$smoke/fault-metrics.json" || {
    echo "check.sh: truncated cache did not degrade to cold" >&2
    exit 1
}
python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$smoke/fault-metrics.json" || {
    echo "check.sh: fault smoke metrics are not valid JSON" >&2
    exit 1
}
grep -q "quarantined" "$smoke/fault-stderr.txt" || {
    echo "check.sh: fault smoke printed no quarantine diagnostics" >&2
    exit 1
}
echo "fault smoke: ok (bad inputs quarantined, truncated cache degraded cold)"

# Format smoke (DESIGN.md §12): a model saved in the binary container must
# reload — directly and through a --model-dir registry — and produce
# byte-identical findings to the original file-loaded scan.
mkdir -p "$smoke/models"
cp "$smoke/model.json" "$smoke/models/smoke.bin"
scan_out() { # $1 = extra args..., writes stdout to the named file
    local out="$1"; shift
    local rc=0
    target/release/namer scan "$@" "$smoke/playground/repos" \
        > "$out" 2>/dev/null || rc=$?
    if [ "$rc" -gt 1 ]; then
        echo "check.sh: format smoke scan failed (exit $rc)" >&2
        exit "$rc"
    fi
}
scan_out "$smoke/findings-file.txt" --model "$smoke/model.json"
scan_out "$smoke/findings-reload.txt" --model "$smoke/models/smoke.bin"
scan_out "$smoke/findings-registry.txt" --model-dir "$smoke/models"
cmp -s "$smoke/findings-file.txt" "$smoke/findings-reload.txt" || {
    echo "check.sh: binary save -> reload changed the findings" >&2
    exit 1
}
cmp -s "$smoke/findings-file.txt" "$smoke/findings-registry.txt" || {
    echo "check.sh: registry-served model changed the findings" >&2
    exit 1
}
echo "format smoke: ok (binary reload and registry scans byte-identical)"

# Serve smoke (DESIGN.md §13): spawn the JSON-RPC daemon over stdio, run
# handshake -> analyze -> shutdown, and validate that the handshake
# advertises the protocol, every request gets a result, and the analyze
# response's per-request MetricsSnapshot carries the full §10 key set.
printf '%s\n' \
  '{"jsonrpc":"2.0","id":1,"method":"initialize","params":{"protocol":1}}' \
  '{"jsonrpc":"2.0","id":2,"method":"file.analyze","params":{"files":[{"path":"buggy.py","content":"class T(TestCase):\n    def t(self):\n        self.assertTrue(widget.size, 12)\n"}]}}' \
  '{"jsonrpc":"2.0","id":3,"method":"shutdown"}' \
  | target/release/namer serve --model "$smoke/model.json" \
  > "$smoke/serve-out.jsonl" || {
    echo "check.sh: serve smoke daemon failed" >&2
    exit 1
}
python3 - "$smoke/serve-out.jsonl" <<'PY' || exit 1
import json, sys

lines = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
assert len(lines) == 3, f"expected 3 responses, got {len(lines)}"
init, analyze, shutdown = lines
for resp in lines:
    assert "error" not in resp, f"unexpected error response: {resp}"
assert init["result"]["protocol"] == 1, "handshake protocol mismatch"
assert init["result"]["server"] == "namer-serve"
assert "file.analyze" in init["result"]["methods"]
langs = init["result"]["capabilities"]["languages"]
assert langs == ["python", "java", "javascript"], f"bad languages: {langs}"
result = analyze["result"]
for key in ("findings", "summary", "diagnostics", "metrics"):
    assert key in result, f"analyze result missing {key!r}"
metrics = result["metrics"]
for key in ("schema_version", "counters", "phases",
            "shard_busy_nanos", "shard_imbalance"):
    assert key in metrics, f"MetricsSnapshot missing {key!r}"
for counter in ("serve_requests", "files_scanned", "statements_scanned"):
    assert counter in metrics["counters"], f"counters missing {counter!r}"
assert metrics["counters"]["serve_requests"] == 1
assert metrics["phases"]["serve"]["calls"] == 1
assert shutdown["result"] == {"ok": True}
PY
echo "serve smoke: ok (handshake, analyze, shutdown; snapshot keys valid)"

# Watch smoke (DESIGN.md §14): start `namer watch` over the salted corpus,
# let it take its findings baseline, then touch one line — delete the line
# behind an existing finding — and expect (a) a `- ` findings-diff line and
# a clean bounded exit, and (b) statement-region splicing to have fired
# (`stmt_cache_hits > 0` in the cumulative metrics): the edited file is
# re-scanned fresh, but its unchanged statements splice from cached regions.
scan_rc=0
target/release/namer scan --model "$smoke/model.json" \
    "$smoke/playground/repos" > "$smoke/watch-findings.txt" 2>/dev/null || scan_rc=$?
if [ "$scan_rc" -gt 1 ]; then
    echo "check.sh: watch smoke baseline scan failed (exit $scan_rc)" >&2
    exit "$scan_rc"
fi
finding=$(grep -m1 -E ':[0-9]+: replace ' "$smoke/watch-findings.txt") || {
    echo "check.sh: watch smoke found no finding to edit away" >&2
    exit 1
}
ffile=${finding%%:*}
fline=$(printf '%s\n' "$finding" | cut -d: -f2)
mkdir -p "$smoke/watch-cache"
target/release/namer watch --model "$smoke/model.json" \
    --cache-dir "$smoke/watch-cache" \
    --metrics-out "$smoke/watch-metrics.json" \
    --interval-ms 200 --max-polls 100 --max-changes 1 \
    "$smoke/playground/repos" > "$smoke/watch-out.txt" 2>/dev/null &
watch_pid=$!
for _ in $(seq 1 50); do
    grep -q 'finding(s) at baseline' "$smoke/watch-out.txt" 2>/dev/null && break
    sleep 0.2
done
grep -q 'finding(s) at baseline' "$smoke/watch-out.txt" || {
    echo "check.sh: namer watch never reported its baseline" >&2
    kill "$watch_pid" 2>/dev/null || true
    exit 1
}
sed -i "${fline}d" "$smoke/playground/repos/$ffile"
watch_rc=0
wait "$watch_pid" || watch_rc=$?
if [ "$watch_rc" -ne 0 ]; then
    echo "check.sh: namer watch exited $watch_rc" >&2
    cat "$smoke/watch-out.txt" >&2
    exit 1
fi
grep -q '^- ' "$smoke/watch-out.txt" || {
    echo "check.sh: one-line touch produced no findings diff" >&2
    cat "$smoke/watch-out.txt" >&2
    exit 1
}
python3 - "$smoke/watch-metrics.json" <<'PY' || exit 1
import json, sys
counters = json.load(open(sys.argv[1]))["counters"]
assert counters["stmt_cache_hits"] > 0, f"no statement splicing: {counters}"
assert counters["watch_events"] >= 1, f"no watch event counted: {counters}"
PY
echo "watch smoke: ok (findings diff delivered, stmt_cache_hits > 0)"

RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
