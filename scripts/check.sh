#!/usr/bin/env bash
# Full local gate: build, every test (incl. the bench_incremental and
# bench_shard smoke tests), clippy with warnings denied, a quick run of the
# sharding benchmark (its exit code enforces the byte-identical guarantee),
# and rustdoc with warnings denied (catches doc drift and broken intra-doc
# links). CI and pre-push both run this.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo run --release -p namer-bench --bin bench_shard -- --quick --out /tmp/BENCH_shard_check.json
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
