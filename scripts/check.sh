#!/usr/bin/env bash
# Full local gate: build, every test (incl. the bench_incremental and
# bench_shard smoke tests), clippy with warnings denied, a quick run of the
# sharding benchmark (its exit code enforces the byte-identical guarantee),
# a CLI metrics smoke (train + scan with --metrics-out, validating the JSON
# key set of DESIGN.md §10), and rustdoc with warnings denied (catches doc
# drift and broken intra-doc links). CI and pre-push both run this.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo run --release -p namer-bench --bin bench_shard -- --quick --out /tmp/BENCH_shard_check.json

# Metrics smoke: corpus -> train -> scan --metrics-out, then check the
# snapshot carries the full §10 key set. scan exits 1 when it finds issues,
# which the synthetic corpus is built to contain — tolerate exactly that.
smoke=$(mktemp -d)
trap 'rm -rf "$smoke"' EXIT
target/release/namer corpus --out "$smoke/playground" --seed 7
target/release/namer train \
    --corpus "$smoke/playground/repos" \
    --commits "$smoke/playground/fixes" \
    --labels "$smoke/playground/labels.tsv" \
    -o "$smoke/model.json"
scan_rc=0
target/release/namer scan --model "$smoke/model.json" \
    --metrics-out "$smoke/metrics.json" \
    "$smoke/playground/repos" >/dev/null || scan_rc=$?
if [ "$scan_rc" -gt 1 ]; then
    echo "check.sh: metrics smoke scan failed (exit $scan_rc)" >&2
    exit "$scan_rc"
fi
for key in schema_version counters phases shard_busy_nanos shard_imbalance \
           files_scanned statements_scanned pattern_matches cache_hits \
           cache_degraded_cold detect process scan assemble classify; do
    grep -q "\"$key\"" "$smoke/metrics.json" || {
        echo "check.sh: metrics.json missing key \"$key\"" >&2
        exit 1
    }
done
echo "metrics smoke: ok ($smoke/metrics.json validated)"

RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
