#!/usr/bin/env bash
# Minimal scripted client for `namer serve` (DESIGN.md §13): spawns the
# daemon over stdio, runs the initialize handshake, analyzes the given
# files in one batch, and shuts the daemon down. Findings are printed one
# JSON object per line.
#
# Usage: scripts/serve_client.sh MODEL [FILE...]
#   MODEL   a trained model file (namer train -o MODEL)
#   FILE    Python/Java sources to analyze (default: a built-in buggy
#           snippet, so the script demos without arguments)
set -euo pipefail
cd "$(dirname "$0")/.."

if [ $# -lt 1 ]; then
    echo "usage: $0 MODEL [FILE...]" >&2
    exit 2
fi
model="$1"; shift

namer=target/release/namer
if [ ! -x "$namer" ]; then
    echo "$0: build first: cargo build --release" >&2
    exit 2
fi

# Assemble the request transcript: handshake, one batch analyze, shutdown.
# python3 does the JSON escaping so arbitrary file contents survive.
transcript=$(python3 - "$@" <<'PY'
import json, sys

files = []
for path in sys.argv[1:]:
    with open(path, encoding="utf-8") as fh:
        files.append({"path": path, "content": fh.read()})
if not files:
    files = [{
        "path": "buggy.py",
        "content": "class T(TestCase):\n"
                   "    def t(self):\n"
                   "        self.assertTrue(widget.size, 12)\n",
    }]

print(json.dumps({"jsonrpc": "2.0", "id": 1, "method": "initialize",
                  "params": {"protocol": 1}}))
print(json.dumps({"jsonrpc": "2.0", "id": 2, "method": "file.analyze",
                  "params": {"files": files}}))
print(json.dumps({"jsonrpc": "2.0", "id": 3, "method": "shutdown"}))
PY
)

printf '%s\n' "$transcript" \
    | "$namer" serve --model "$model" \
    | python3 -c '
import json, sys

for line in sys.stdin:
    resp = json.loads(line)
    if "error" in resp:
        sys.exit("request %s failed: %s" % (resp["id"], resp["error"]))
    if resp["id"] == 2:
        result = resp["result"]
        for finding in result["findings"]:
            print(json.dumps(finding))
        summary = result["summary"]
        print("%d finding(s) in %d file(s)" %
              (summary["findings"], summary["files"]), file=sys.stderr)
'
