//! `namer` — the command-line front end.
//!
//! ```text
//! namer demo   [--java] [-o MODEL]           end-to-end demo on a synthetic corpus
//! namer corpus [--java] --out DIR            write a synthetic corpus to disk
//! namer train  --corpus DIR [options]        mine patterns + train the classifier
//! namer scan   --model MODEL PATH...         scan files/directories for naming issues
//! namer watch  --model MODEL PATH...         poll PATHs and print findings diffs
//! namer serve  --model MODEL [--listen ADDR] long-lived JSON-RPC detection daemon
//! ```
//!
//! `train` mines name patterns from every `.py`/`.java` file under
//! `--corpus` (subdirectory = repository), optionally mines confusing word
//! pairs from `--commits` (a directory of `<name>.before` / `<name>.after`
//! file pairs), optionally trains the defect classifier from `--labels`
//! (TSV: `path<TAB>line<TAB>true|false`), and writes a model in the binary
//! container format (DESIGN.md §12; legacy JSON models still load — the
//! format is sniffed). `scan` loads one model (`--model FILE`) or serves
//! from a directory of models (`--model-dir DIR`, backed by the
//! LRU-budgeted [`ModelRegistry`]) into a [`NamerBuilder`] session and
//! prints reports with rendered fixes; it exits with status 1 when issues
//! are found, so it can gate CI. Ingestion degrades gracefully (DESIGN.md §11): unreadable and
//! non-UTF-8 inputs and symlink cycles are quarantined with a diagnostic
//! instead of aborting the run, and every file the CLI writes lands via an
//! atomic temp + rename, so a crash never leaves a truncated model, cache,
//! or metrics file. Every command accepts the shared runtime options ([`RuntimeOpts`]):
//! `--threads N` (file axis), `--pattern-shards N` (pattern axis, DESIGN.md
//! §9), `--cache-dir DIR` (scan cache, DESIGN.md §8), `--metrics-out FILE`
//! (per-phase timings + counters as JSON, DESIGN.md §10), and `--timings`
//! (human-readable timing table on stderr). Output is byte-identical at any
//! threads × shards combination.
//!
//! `watch` is the CLI face of statement-level incrementality (DESIGN.md
//! §14): it re-reads the PATHs every `--interval-ms`, re-runs the resident
//! session (with `--cache-dir` only dirty statements re-scan), and prints
//! the findings diff against the previous poll as `+`/`-` lines.
//! `--max-polls N` / `--max-changes N` bound the loop for scripting.
//!
//! `serve` keeps the model(s) and warm scan caches resident and answers
//! newline-delimited JSON-RPC 2.0 requests (`initialize` / `ping` /
//! `file.analyze` / `model.load` / `cache.flush` / `file.watch` /
//! `file.unwatch` / `shutdown`) over stdio, or over TCP with `--listen
//! ADDR` — the wire protocol is DESIGN.md §13, watch push notifications
//! §14.

use namer::core::{
    atomic_write, fix_line, CorpusReader, ModelRegistry, Namer, NamerBuilder, NamerConfig,
    NamerError, RealFs, SavedModel, Violation,
};
use namer::corpus::{CorpusConfig, Generator};
use namer::observe::{Counter, MetricsSnapshot, Observer, Phase, PipelineMetrics};
use namer::patterns::{MiningConfig, ShardPlan};
use namer::serve::{serve_listener, serve_stdio, ModelHost, ServeConfig};
use namer::syntax::{Lang, SourceFile};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

/// The CLI always runs against the real filesystem; tests exercise the
/// same ingestion/persistence code through a fault-injecting
/// [`namer::core::FaultVfs`] (`tests/faults.rs`).
static FS: RealFs = RealFs;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("demo") => cmd_demo(&args[1..]),
        Some("corpus") => cmd_corpus(&args[1..]),
        Some("train") => cmd_train(&args[1..]),
        Some("scan") => cmd_scan(&args[1..]),
        Some("watch") => cmd_watch(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("help") | None => {
            print_usage();
            Ok(ExitCode::SUCCESS)
        }
        Some(other) => Err(NamerError::Usage(format!(
            "unknown command `{other}` (try `namer help`)"
        ))),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    println!(
        "namer — find and fix naming issues (PLDI 2021 reproduction)\n\n\
         USAGE:\n  namer demo  [--java | --js] [-o MODEL] [runtime options]\n  namer corpus [--java | --js] [--seed N] --out DIR [runtime options]\n  namer train --corpus DIR \
         [--commits DIR] [--labels TSV] [--lang python|java|javascript]\n              \
         [--no-classifier] [--no-analysis] [-o MODEL] [runtime options]\n  namer scan  (--model FILE | --model-dir DIR [--model NAME])\n              [--model-budget MB] [--explain] [--format sarif] [--changed-only]\n              [runtime options] PATH...\n  namer watch (--model FILE | --model-dir DIR [--model NAME])\n              [--interval-ms N] [--max-polls N] [--max-changes N]\n              [runtime options] PATH...\n  namer serve (--model FILE | --model-dir DIR) [--listen ADDR] [--queue N]\n              [--model-budget MB] [--deterministic] [runtime options]\n\n\
         Runtime options (every command):\n  \
         --threads N         worker threads (0 = all cores, the default)\n  \
         --pattern-shards N  prefix-disjoint pattern shards (1 = off; 0 = per core)\n  \
         --cache-dir DIR     per-file scan cache between runs (scan and serve)\n  \
         --metrics-out FILE  write per-phase timings + counters as JSON\n  \
         --timings           print a human-readable timing table to stderr\n\n\
         Threads and shards are scheduling knobs only: output is\n\
         byte-identical at any threads × shards combination, and so are the\n\
         metrics counters (timings vary run to run). `--cache-dir DIR`\n\
         caches per-file scan state between runs, so unchanged files are\n\
         not re-scanned; output stays byte-identical to a full scan.\n\
         `--changed-only` (requires --cache-dir) prints reports only for\n\
         files whose content changed since the cached run.\n\n\
         Models are written in the binary container format (DESIGN.md §12);\n\
         legacy JSON models still load — the format is sniffed. With\n\
         `--model-dir DIR`, scan serves models from a directory by name\n\
         (file stem; `--model NAME` picks one, optional when the directory\n\
         holds exactly one) through an LRU registry capped at\n\
         `--model-budget MB` (default 256).\n\n\
         `watch` polls the PATHs every --interval-ms (default 500), re-runs\n\
         the resident session, and prints the findings diff against the\n\
         previous poll as `+`/`-` lines; the first poll is the baseline and\n\
         counts no change. With --cache-dir only edited statements re-scan\n\
         (DESIGN.md §14). --max-polls N / --max-changes N stop the loop\n\
         after N polls / N change events (0 = unbounded, the default).\n\n\
         `serve` answers newline-delimited JSON-RPC 2.0 over stdio (default)\n\
         or TCP (`--listen 127.0.0.1:7357`): initialize/ping/shutdown\n\
         handshake plus batch file.analyze, model.load, cache.flush, and\n\
         file.watch/file.unwatch subscriptions (changed findings arrive as\n\
         id-less file.findings notifications), every response carrying\n\
         findings and a per-request metrics snapshot (DESIGN.md §13–§14).\n\
         `--queue N` bounds the TCP request queue (overflow gets a typed\n\
         server_busy error; default 64) and `--deterministic` zeroes\n\
         timings so responses are byte-stable.\n"
    );
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Runtime options shared by every subcommand, parsed once by
/// [`RuntimeOpts::parse`] so `--threads` / `--pattern-shards` /
/// `--cache-dir` / `--metrics-out` / `--timings` mean the same thing
/// everywhere.
struct RuntimeOpts {
    /// `--threads N` (0 = all available cores, the default).
    threads: usize,
    /// `--pattern-shards N` (1 = unsharded, the default; 0 = one shard per
    /// core).
    shard_plan: ShardPlan,
    /// `--cache-dir DIR`: on-disk scan cache (used by `scan`; accepted and
    /// ignored elsewhere).
    cache_dir: Option<String>,
    /// `--metrics-out FILE`: write the run's [`MetricsSnapshot`] as JSON.
    metrics_out: Option<PathBuf>,
    /// `--timings`: print the human-readable timing table to stderr.
    timings: bool,
}

impl RuntimeOpts {
    fn parse(args: &[String]) -> Result<RuntimeOpts, NamerError> {
        let threads = match flag_value(args, "--threads") {
            Some(s) => s
                .parse()
                .map_err(|_| NamerError::Usage(format!("bad --threads {s:?}")))?,
            None => 0,
        };
        let shard_plan = match flag_value(args, "--pattern-shards") {
            Some(s) => s
                .parse()
                .map(ShardPlan::with_shards)
                .map_err(|_| NamerError::Usage(format!("bad --pattern-shards {s:?}")))?,
            None => ShardPlan::unsharded(),
        };
        Ok(RuntimeOpts {
            threads,
            shard_plan,
            cache_dir: flag_value(args, "--cache-dir").map(str::to_owned),
            metrics_out: flag_value(args, "--metrics-out").map(PathBuf::from),
            timings: has_flag(args, "--timings"),
        })
    }

    /// Applies the session-relevant options to a builder.
    fn apply(&self, builder: NamerBuilder) -> NamerBuilder {
        let builder = builder.threads(self.threads).shard_plan(self.shard_plan);
        match &self.cache_dir {
            Some(dir) => builder.cache_dir(dir),
            None => builder,
        }
    }

    /// Emits a run's metrics per `--metrics-out` / `--timings`.
    fn emit(&self, snapshot: &MetricsSnapshot) -> Result<(), NamerError> {
        if let Some(path) = &self.metrics_out {
            write_file(path, snapshot.to_json())?;
            eprintln!("metrics written to {}", path.display());
        }
        if self.timings {
            eprint!("{}", snapshot.render_human());
        }
        Ok(())
    }
}

fn lang_from_args(args: &[String]) -> Lang {
    match flag_value(args, "--lang") {
        Some(spelled) => namer::syntax::lang::from_alias(spelled).unwrap_or_else(|| {
            eprintln!("warning: unknown language `{spelled}`, defaulting to python");
            Lang::Python
        }),
        None if has_flag(args, "--java") => Lang::Java,
        None if has_flag(args, "--js") => Lang::Js,
        None => Lang::Python,
    }
}

fn default_config() -> NamerConfig {
    NamerConfig {
        mining: MiningConfig {
            min_path_count: 4,
            min_support: 15,
            ..MiningConfig::default()
        },
        labeled_per_class: 30,
        ..NamerConfig::default()
    }
}

/// Reads a file the command cannot proceed without (a model, a labels
/// TSV): transient I/O errors are retried, anything else is a hard error.
fn read_file(path: impl AsRef<Path>) -> Result<String, NamerError> {
    CorpusReader::new(&FS).read_required(path.as_ref())
}

/// Writes a file crash-safely (write-temp + fsync + atomic rename,
/// DESIGN.md §11): models, metrics snapshots, and corpus files are never
/// left truncated by a killed process.
fn write_file(path: impl AsRef<Path>, contents: impl AsRef<[u8]>) -> Result<(), NamerError> {
    let path = path.as_ref();
    atomic_write(&FS, path, contents.as_ref()).map_err(|e| NamerError::io(path, e))
}

fn make_dirs(path: impl AsRef<Path>) -> Result<(), NamerError> {
    let path = path.as_ref();
    std::fs::create_dir_all(path).map_err(|e| NamerError::io(path, e))
}

// ----- demo ------------------------------------------------------------------

fn cmd_demo(args: &[String]) -> Result<ExitCode, NamerError> {
    let lang = lang_from_args(args);
    let opts = RuntimeOpts::parse(args)?;
    let out = flag_value(args, "-o").unwrap_or("namer-model.bin");
    let config = NamerConfig {
        threads: opts.threads,
        shard_plan: opts.shard_plan,
        ..default_config()
    };
    println!("generating a synthetic Big Code corpus ({lang})…");
    let corpus = Generator::new(CorpusConfig::small(lang)).generate(2021);
    let oracle = corpus.oracle();
    let commits: Vec<(String, String)> = corpus
        .commits
        .iter()
        .map(|c| (c.before.clone(), c.after.clone()))
        .collect();
    // One collector spans training and detection, so --metrics-out covers
    // the whole demo pipeline.
    let collector = Arc::new(PipelineMetrics::new());
    let namer = Namer::train_observed(
        &corpus.files,
        &commits,
        |v: &Violation| {
            oracle
                .label(&v.repo, &v.path, v.line, v.original.as_str(), v.suggested.as_str())
                .is_some()
        },
        &config,
        Observer::new(collector.as_ref()),
    );
    println!(
        "mined {} patterns / {} confusing pairs; classifier: {}",
        namer.detector.pattern_count(),
        namer.detector.pairs.len(),
        namer.model_kind,
    );
    let mut session = NamerBuilder::new()
        .namer(namer)
        .metrics(collector.clone())
        .build()?;
    let outcome = session.run(&corpus.files)?;
    for r in outcome.reports.iter().take(10) {
        println!("  {r}");
    }
    println!("… {} reports total", outcome.reports.len());
    SavedModel::from_namer(session.namer()).save(Path::new(out))?;
    println!("model saved to {out}");
    opts.emit(&collector.snapshot())?;
    Ok(ExitCode::SUCCESS)
}

// ----- corpus ----------------------------------------------------------------

/// Writes a synthetic Big Code corpus to disk in the layout `train` expects:
/// `repos/<repo>/<path>`, `fixes/<n>.before|.after`, and a ground-truth
/// `labels.tsv` that can stand in for the paper's manual annotation.
fn cmd_corpus(args: &[String]) -> Result<ExitCode, NamerError> {
    let lang = lang_from_args(args);
    // Corpus generation runs no pipeline stage; the runtime options are
    // still parsed (and validated) for a uniform CLI.
    let opts = RuntimeOpts::parse(args)?;
    let out = PathBuf::from(
        flag_value(args, "--out")
            .ok_or_else(|| NamerError::Usage("`corpus` needs --out DIR".to_owned()))?,
    );
    let seed: u64 = flag_value(args, "--seed")
        .map(|s| {
            s.parse()
                .map_err(|_| NamerError::Usage(format!("bad --seed {s:?}")))
        })
        .transpose()?
        .unwrap_or(2021);
    let corpus = Generator::new(CorpusConfig::small(lang)).generate(seed);

    let repos_dir = out.join("repos");
    for f in &corpus.files {
        let repo_slug = f.repo.replace('/', "_");
        let dest = repos_dir.join(&repo_slug).join(&f.path);
        if let Some(parent) = dest.parent() {
            make_dirs(parent)?;
        }
        write_file(&dest, &f.text)?;
    }

    let fixes_dir = out.join("fixes");
    make_dirs(&fixes_dir)?;
    for (i, c) in corpus.commits.iter().enumerate() {
        write_file(fixes_dir.join(format!("{i:04}.before")), &c.before)?;
        write_file(fixes_dir.join(format!("{i:04}.after")), &c.after)?;
    }

    // Ground-truth labels in the on-disk path space (repo_slug/path).
    let mut labels = String::from("# path	line	label (ground truth from the generator)
");
    for inj in &corpus.injections {
        let repo_slug = inj.repo.replace('/', "_");
        for &line in inj.lines.iter() {
            labels.push_str(&format!("{repo_slug}/{}	{line}	true
", inj.path));
        }
    }
    write_file(out.join("labels.tsv"), labels)?;

    println!(
        "wrote {} files, {} commit pairs, {} injected issues under {}",
        corpus.files.len(),
        corpus.commits.len(),
        corpus.injections.len(),
        out.display()
    );
    println!(
        "next: namer train --corpus {}/repos --commits {}/fixes --labels {}/labels.tsv --lang {}",
        out.display(),
        out.display(),
        out.display(),
        lang.spec().cli_name(),
    );
    // Nothing ran, but an explicit --metrics-out still gets a (zeroed)
    // snapshot rather than silently no file.
    opts.emit(&PipelineMetrics::new().snapshot())?;
    Ok(ExitCode::SUCCESS)
}

// ----- train -----------------------------------------------------------------

fn cmd_train(args: &[String]) -> Result<ExitCode, NamerError> {
    let corpus_dir = flag_value(args, "--corpus")
        .ok_or_else(|| NamerError::Usage("`train` needs --corpus DIR".to_owned()))?;
    let lang = lang_from_args(args);
    let out = flag_value(args, "-o").unwrap_or("namer-model.bin");

    // The collector exists before ingestion so quarantines and retries
    // stream into the same metrics as the training phases.
    let collector = PipelineMetrics::new();
    let mut reader = CorpusReader::new(&FS).observed(collector.observer());
    let files = reader.collect_sources(Path::new(corpus_dir), lang)?;
    if files.is_empty() {
        return Err(NamerError::InvalidConfig(format!(
            "no {lang} sources under {corpus_dir}"
        )));
    }
    println!("corpus: {} files", files.len());

    let commits = match flag_value(args, "--commits") {
        Some(dir) => reader.collect_commits(Path::new(dir))?,
        None => Vec::new(),
    };
    println!("commit pairs: {}", commits.len());
    let ingest_diag = reader.finish();
    if !ingest_diag.is_clean() {
        eprint!("{}", ingest_diag.render_human());
    }

    let opts = RuntimeOpts::parse(args)?;
    let mut config = default_config();
    config.threads = opts.threads;
    config.shard_plan = opts.shard_plan;
    if has_flag(args, "--no-analysis") {
        config.process.use_analysis = false;
    }
    let labels: HashMap<(String, u32), bool> = match flag_value(args, "--labels") {
        Some(path) => parse_labels(Path::new(path))?,
        None => HashMap::new(),
    };
    if labels.is_empty() || has_flag(args, "--no-classifier") {
        config.use_classifier = false;
        if !has_flag(args, "--no-classifier") {
            println!("no --labels given: training without the defect classifier");
        }
    }

    let namer = Namer::train_observed(
        &files,
        &commits,
        |v: &Violation| labels.get(&(v.path.clone(), v.line)).copied().unwrap_or(false),
        &config,
        collector.observer(),
    );
    println!(
        "mined {} patterns / {} confusing pairs{}",
        namer.detector.pattern_count(),
        namer.detector.pairs.len(),
        if namer.has_classifier() {
            format!("; classifier: {} (CV acc {:.0}%)", namer.model_kind, namer.cv_metrics.accuracy * 100.0)
        } else {
            String::new()
        }
    );
    SavedModel::from_namer(&namer).save(Path::new(out))?;
    println!("model saved to {out}");
    opts.emit(&collector.snapshot())?;
    Ok(ExitCode::SUCCESS)
}

// ----- scan ------------------------------------------------------------------

/// The scan model source: one file, or a registry-served directory.
enum ScanModel {
    /// `--model FILE` without `--model-dir`: one model, loaded directly.
    File(SavedModel),
    /// `--model-dir DIR`: a shared model out of the [`ModelRegistry`].
    Registry(Arc<SavedModel>),
}

/// Resolves the scan's model per `--model` / `--model-dir` /
/// `--model-budget`. Split out of [`cmd_scan`] so the whole resolution —
/// registry open included — sits under one [`Phase::ModelLoad`] span.
fn resolve_scan_model(
    args: &[String],
    collector: &Arc<PipelineMetrics>,
) -> Result<ScanModel, NamerError> {
    let budget_mb: usize = match flag_value(args, "--model-budget") {
        Some(s) => s
            .parse()
            .map_err(|_| NamerError::Usage(format!("bad --model-budget {s:?}")))?,
        None => 256,
    };
    match flag_value(args, "--model-dir") {
        Some(dir) => {
            let registry = ModelRegistry::open(Path::new(dir), budget_mb.saturating_mul(1 << 20))?
                .with_metrics(collector.clone());
            let name = match flag_value(args, "--model") {
                Some(name) => name.to_owned(),
                None => registry
                    .sole_name()
                    .map(str::to_owned)
                    .ok_or_else(|| {
                        NamerError::Usage(format!(
                            "--model-dir {dir} holds {} models; pick one with --model NAME ({})",
                            registry.len(),
                            registry.names().join(", ")
                        ))
                    })?,
            };
            Ok(ScanModel::Registry(registry.get(&name)?))
        }
        None => {
            let path = flag_value(args, "--model").ok_or_else(|| {
                NamerError::Usage("`scan` needs --model FILE or --model-dir DIR".to_owned())
            })?;
            Ok(ScanModel::File(SavedModel::load_via(&FS, Path::new(path))?))
        }
    }
}

/// Non-flag positional PATH arguments, skipping the value of every
/// value-taking flag `scan` and `watch` accept.
fn positional_paths(args: &[String]) -> Vec<PathBuf> {
    const VALUE_FLAGS: [&str; 12] = [
        "--model",
        "--model-dir",
        "--model-budget",
        "--format",
        "--threads",
        "--pattern-shards",
        "--cache-dir",
        "--metrics-out",
        "--lang",
        "--interval-ms",
        "--max-polls",
        "--max-changes",
    ];
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut skip_next = false;
    for a in args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if VALUE_FLAGS.contains(&a.as_str()) {
            skip_next = true;
            continue;
        }
        if a.starts_with('-') {
            continue;
        }
        paths.push(PathBuf::from(a));
    }
    paths
}

fn cmd_scan(args: &[String]) -> Result<ExitCode, NamerError> {
    // One collector spans model load, ingestion, and the session, so
    // --metrics-out reports the whole scan including Phase::ModelLoad.
    let collector = Arc::new(PipelineMetrics::new());
    let model = {
        let _span = Observer::new(collector.as_ref()).phase(Phase::ModelLoad);
        resolve_scan_model(args, &collector)?
    };
    let lang = match &model {
        ScanModel::File(m) => m.lang,
        ScanModel::Registry(m) => m.lang,
    };
    // The fault-tolerant reader covers the whole ingestion pass; its
    // diagnostics are seeded into the session below.
    let mut reader = CorpusReader::new(&FS);

    let paths = positional_paths(args);
    if paths.is_empty() {
        return Err(NamerError::Usage("`scan` needs at least one PATH".to_owned()));
    }

    let mut files = Vec::new();
    for p in &paths {
        if p.is_dir() {
            files.extend(reader.collect_sources(p, lang)?);
        } else if p.is_file() {
            // An unreadable or non-UTF-8 file named explicitly is
            // quarantined like any other, so one bad argument cannot
            // abort the rest of the scan.
            if let Some(text) = reader.read_text(p) {
                files.push(SourceFile::new(
                    p.parent().map(|d| d.display().to_string()).unwrap_or_default(),
                    p.display().to_string(),
                    text,
                    lang,
                ));
            }
        } else {
            return Err(NamerError::Usage(format!("no such path: {}", p.display())));
        }
    }
    let ingest_diag = reader.finish();

    let explain = has_flag(args, "--explain");
    let changed_only = has_flag(args, "--changed-only");
    let opts = RuntimeOpts::parse(args)?;
    if changed_only && opts.cache_dir.is_none() {
        return Err(NamerError::Usage(
            "--changed-only requires --cache-dir".to_owned(),
        ));
    }

    let sourced = match model {
        ScanModel::File(m) => NamerBuilder::new().model(m),
        ScanModel::Registry(m) => NamerBuilder::new().shared(m),
    };
    let mut session = opts
        .apply(sourced.config(default_config()))
        .metrics(collector.clone())
        .ingest_diagnostics(ingest_diag)
        .build()?;
    if let Some(status) = session.cache_status() {
        println!("scan cache: {status}");
    }

    let outcome = session.run(&files)?;
    let mut reports = outcome.reports;
    if outcome.cache.is_some() {
        // Cache accounting straight from the pipeline's own metrics, so the
        // summary can never drift from what the scan actually did.
        let m = &outcome.metrics;
        let degraded = if m.counter(Counter::CacheDegradedCold) > 0 {
            ", cache degraded to cold"
        } else {
            ""
        };
        println!(
            "scanned {} file(s): {} cache hit(s), {} miss(es), {} known parse failure(s){}",
            files.len(),
            m.counter(Counter::CacheHits),
            m.counter(Counter::CacheMisses),
            m.counter(Counter::CacheParseFailures),
            degraded
        );
    }
    if !outcome.diagnostics.is_clean() {
        eprint!("{}", outcome.diagnostics.render_human());
    }
    if let (true, Some(cache)) = (changed_only, &outcome.cache) {
        let changed: HashSet<(String, String)> = cache.changed.iter().cloned().collect();
        reports.retain(|r| {
            changed.contains(&(r.violation.repo.clone(), r.violation.path.clone()))
        });
    }
    // Emit the scan-wide collector (model load included), not just the
    // session's own snapshot.
    opts.emit(&collector.snapshot())?;
    let namer = session.namer();

    if flag_value(args, "--format") == Some("sarif") {
        println!("{}", namer::core::to_sarif(&reports, &namer.detector));
        return Ok(if reports.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        });
    }
    for r in &reports {
        println!(
            "{}:{}: replace `{}` with `{}` [{}]",
            r.violation.path, r.violation.line, r.violation.original, r.violation.suggested,
            r.violation.pattern_ty
        );
        if explain {
            let pattern = &namer.detector.patterns.patterns[r.violation.pattern_idx];
            for line in pattern.to_string().lines() {
                println!("    | {line}");
            }
        }
        let file = files
            .iter()
            .find(|f| f.path == r.violation.path && f.repo == r.violation.repo);
        if let Some(line) = file.and_then(|f| f.text.lines().nth(r.violation.line as usize - 1)) {
            println!("    found: {}", line.trim());
            if let Some(fixed) = fix_line(
                line,
                r.violation.original.as_str(),
                r.violation.suggested.as_str(),
            ) {
                println!("    fixed: {}", fixed.trim());
            }
        }
    }
    let quarantined = outcome.diagnostics.quarantined.len();
    if quarantined > 0 {
        println!(
            "{} naming issue(s) found in {} file(s); {} file(s) quarantined",
            reports.len(),
            files.len(),
            quarantined
        );
    } else {
        println!("{} naming issue(s) found in {} file(s)", reports.len(), files.len());
    }
    Ok(if reports.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

// ----- watch -----------------------------------------------------------------

/// `namer watch`: the poll-driven findings-diff loop over the scan
/// PATHs. Each poll re-reads the sources and re-runs one resident
/// session; with `--cache-dir` the statement-region cache (DESIGN.md
/// §14) keeps warm polls proportional to the edit, not the corpus. The
/// first poll establishes the baseline silently; every later poll whose
/// finding set differs prints the delta as `+`/`-` lines and counts one
/// change event.
fn cmd_watch(args: &[String]) -> Result<ExitCode, NamerError> {
    // One collector spans the whole watch loop, so --metrics-out is
    // cumulative across polls (that is what makes `stmt_cache_hits`
    // observable to scripts).
    let collector = Arc::new(PipelineMetrics::new());
    let model = {
        let _span = Observer::new(collector.as_ref()).phase(Phase::ModelLoad);
        resolve_scan_model(args, &collector)?
    };
    let lang = match &model {
        ScanModel::File(m) => m.lang,
        ScanModel::Registry(m) => m.lang,
    };
    let paths = positional_paths(args);
    if paths.is_empty() {
        return Err(NamerError::Usage("`watch` needs at least one PATH".to_owned()));
    }
    let opts = RuntimeOpts::parse(args)?;
    let number = |flag: &str, default: u64| -> Result<u64, NamerError> {
        match flag_value(args, flag) {
            Some(s) => s
                .parse()
                .map_err(|_| NamerError::Usage(format!("bad {flag} {s:?}"))),
            None => Ok(default),
        }
    };
    let interval_ms = number("--interval-ms", 500)?;
    let max_polls = number("--max-polls", 0)?;
    let max_changes = number("--max-changes", 0)?;

    let sourced = match model {
        ScanModel::File(m) => NamerBuilder::new().model(m),
        ScanModel::Registry(m) => NamerBuilder::new().shared(m),
    };
    let mut session = opts
        .apply(sourced.config(default_config()))
        .metrics(collector.clone())
        .build()?;
    if let Some(status) = session.cache_status() {
        eprintln!("scan cache: {status}");
    }

    let mut baseline: Option<BTreeSet<String>> = None;
    let mut polls: u64 = 0;
    let mut changes: u64 = 0;
    loop {
        polls += 1;
        let mut reader = CorpusReader::new(&FS);
        let mut files = Vec::new();
        for p in &paths {
            if p.is_dir() {
                files.extend(reader.collect_sources(p, lang)?);
            } else if p.is_file() {
                if let Some(text) = reader.read_text(p) {
                    files.push(SourceFile::new(
                        p.parent().map(|d| d.display().to_string()).unwrap_or_default(),
                        p.display().to_string(),
                        text,
                        lang,
                    ));
                }
            } else {
                return Err(NamerError::Usage(format!("no such path: {}", p.display())));
            }
        }
        let diag = reader.finish();
        if !diag.is_clean() {
            eprint!("{}", diag.render_human());
        }
        let outcome = session.run(&files)?;
        let current: BTreeSet<String> = outcome
            .reports
            .iter()
            .map(|r| {
                format!(
                    "{}:{}: replace `{}` with `{}` [{}]",
                    r.violation.path,
                    r.violation.line,
                    r.violation.original,
                    r.violation.suggested,
                    r.violation.pattern_ty
                )
            })
            .collect();
        match &baseline {
            None => {
                println!(
                    "watching {} file(s): {} finding(s) at baseline",
                    files.len(),
                    current.len()
                );
            }
            Some(prev) => {
                let added: Vec<&String> = current.difference(prev).collect();
                let removed: Vec<&String> = prev.difference(&current).collect();
                if !added.is_empty() || !removed.is_empty() {
                    changes += 1;
                    collector.observer().add(Counter::WatchEvents, 1);
                    for line in added {
                        println!("+ {line}");
                    }
                    for line in removed {
                        println!("- {line}");
                    }
                }
            }
        }
        baseline = Some(current);
        // Scripts tail the output mid-loop; don't sit on a buffered diff.
        let _ = std::io::stdout().flush();
        if max_polls > 0 && polls >= max_polls {
            break;
        }
        if max_changes > 0 && changes >= max_changes {
            break;
        }
        std::thread::sleep(Duration::from_millis(interval_ms));
    }
    println!("watched {polls} poll(s), {changes} change event(s)");
    opts.emit(&collector.snapshot())?;
    Ok(ExitCode::SUCCESS)
}

// ----- serve -----------------------------------------------------------------

/// `namer serve`: the long-lived JSON-RPC detection daemon (DESIGN.md
/// §13). Serves one model (`--model FILE`) or a whole registry
/// (`--model-dir DIR`) over stdio, or over TCP with `--listen ADDR`.
/// Runs until the client sends `shutdown` (or stdin closes), then emits
/// the daemon-wide aggregate metrics per `--metrics-out` / `--timings`.
fn cmd_serve(args: &[String]) -> Result<ExitCode, NamerError> {
    let opts = RuntimeOpts::parse(args)?;
    // The daemon-wide collector aggregates across all requests; each
    // response additionally carries its own per-request snapshot.
    let collector = Arc::new(PipelineMetrics::new());
    let budget_mb: usize = match flag_value(args, "--model-budget") {
        Some(s) => s
            .parse()
            .map_err(|_| NamerError::Usage(format!("bad --model-budget {s:?}")))?,
        None => 256,
    };
    let host = {
        let _span = Observer::new(collector.as_ref()).phase(Phase::ModelLoad);
        match flag_value(args, "--model-dir") {
            Some(dir) => ModelHost::Registry(Arc::new(
                ModelRegistry::open(Path::new(dir), budget_mb.saturating_mul(1 << 20))?
                    .with_metrics(collector.clone()),
            )),
            None => {
                let path = flag_value(args, "--model").ok_or_else(|| {
                    NamerError::Usage("`serve` needs --model FILE or --model-dir DIR".to_owned())
                })?;
                let model = SavedModel::load_via(&FS, Path::new(path))?;
                let name = Path::new(path)
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .unwrap_or("model")
                    .to_owned();
                ModelHost::Single { name, model: Arc::new(model) }
            }
        }
    };
    let mut config = ServeConfig::new(NamerConfig {
        threads: opts.threads,
        shard_plan: opts.shard_plan,
        ..default_config()
    });
    config.cache_root = opts.cache_dir.clone().map(PathBuf::from);
    if let Some(s) = flag_value(args, "--queue") {
        config.queue_capacity = s
            .parse()
            .map_err(|_| NamerError::Usage(format!("bad --queue {s:?}")))?;
    }
    config.scrub_timings = has_flag(args, "--deterministic");
    config.metrics = Some(collector.clone());
    match flag_value(args, "--listen") {
        Some(addr) => {
            let listener = std::net::TcpListener::bind(addr)
                .map_err(|e| NamerError::io(Path::new(addr), e))?;
            if let Ok(local) = listener.local_addr() {
                eprintln!("namer serve: listening on {local}");
            }
            serve_listener(config, host, listener)
                .map_err(|e| NamerError::io(Path::new(addr), e))?;
        }
        None => {
            serve_stdio(config, host).map_err(|e| NamerError::io(Path::new("<stdio>"), e))?;
        }
    }
    opts.emit(&collector.snapshot())?;
    Ok(ExitCode::SUCCESS)
}

// ----- labels ------------------------------------------------------------------

/// Parses a labels TSV: `path<TAB>line<TAB>true|false`.
fn parse_labels(path: &Path) -> Result<HashMap<(String, u32), bool>, NamerError> {
    let text = read_file(path)?;
    let mut out = HashMap::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('\t');
        let (Some(p), Some(l), Some(v)) = (parts.next(), parts.next(), parts.next()) else {
            return Err(NamerError::Usage(format!(
                "{}:{}: expected `path\\tline\\tbool`",
                path.display(),
                i + 1
            )));
        };
        let l: u32 = l.parse().map_err(|_| {
            NamerError::Usage(format!("{}:{}: bad line number {l:?}", path.display(), i + 1))
        })?;
        let v: bool = v.parse().map_err(|_| {
            NamerError::Usage(format!("{}:{}: bad label {v:?}", path.display(), i + 1))
        })?;
        out.insert((p.to_owned(), l), v);
    }
    Ok(out)
}
