//! # Namer
//!
//! A faithful, from-scratch Rust reproduction of *“Learning to Find Naming
//! Issues with Big Code and Small Supervision”* (He, Lee, Raychev, Vechev —
//! PLDI 2021), including every substrate the paper depends on.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`syntax`] — Python/Java parsing, subtoken splitting, the AST+ transform,
//!   and name paths (§3.1 of the paper).
//! * [`datalog`] — the bottom-up Datalog engine backing the points-to analysis.
//! * [`analysis`] — flow-/context-sensitive Andersen points-to and
//!   primitive-origin dataflow (§4.1).
//! * [`patterns`] — name patterns, FP-tree mining, confusing-word pairs
//!   (§3.2–§3.3).
//! * [`ml`] — the small-supervision classifier stack: PCA, SVM, logistic
//!   regression, LDA, cross-validation (§4.2, §5.1).
//! * [`nn`] — the GGNN and GREAT deep-learning baselines of §5.6.
//! * [`corpus`] — the synthetic Big Code substrate standing in for the GitHub
//!   dataset, with ground-truth issue injection.
//! * [`core`] — the end-to-end Namer pipeline: mining → matching →
//!   classification → reports.
//! * [`observe`] — pipeline observability: counters, phase timings, and the
//!   `MetricsSink` trait behind `--metrics-out` (DESIGN.md §10).
//! * [`serve`] — the long-lived JSON-RPC detection daemon behind
//!   `namer serve` (DESIGN.md §13).
//!
//! ## Quickstart
//!
//! ```rust,no_run
//! use namer::core::{Namer, NamerBuilder, NamerConfig};
//! use namer::corpus::{CorpusConfig, Generator};
//! use namer::syntax::Lang;
//!
//! # fn main() -> Result<(), namer::core::NamerError> {
//! // Generate a small synthetic Big Code corpus (stands in for GitHub).
//! let corpus = Generator::new(CorpusConfig::small(Lang::Python)).generate(42);
//! let oracle = corpus.oracle();
//! let commits: Vec<(String, String)> = corpus
//!     .commits
//!     .iter()
//!     .map(|c| (c.before.clone(), c.after.clone()))
//!     .collect();
//! // Mine patterns and train the classifier on a small labeled set.
//! let namer = Namer::train(
//!     &corpus.files,
//!     &commits,
//!     |v| oracle.label(&v.repo, &v.path, v.line, v.original.as_str(), v.suggested.as_str()).is_some(),
//!     &NamerConfig::default(),
//! );
//! // Detect through a session: one API for full, cached, and sharded scans.
//! let mut session = NamerBuilder::new().namer(namer).build()?;
//! for report in session.run(&corpus.files)?.reports.iter().take(3) {
//!     println!("{report}");
//! }
//! # Ok(())
//! # }
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use namer_analysis as analysis;
pub use namer_core as core;
pub use namer_corpus as corpus;
pub use namer_datalog as datalog;
pub use namer_ml as ml;
pub use namer_nn as nn;
pub use namer_observe as observe;
pub use namer_patterns as patterns;
pub use namer_serve as serve;
pub use namer_syntax as syntax;
