//! Integration checks on the w/o C and w/o A ablations and on report
//! well-formedness (the machinery behind Tables 2 and 5).

use namer::core::{
    process, Namer, NamerBuilder, NamerConfig, ProcessConfig, ScanRequest, FEATURE_COUNT,
};
use namer::corpus::{CorpusConfig, Generator, Oracle};
use namer::patterns::MiningConfig;
use namer::syntax::{Lang, SourceFile};

/// Detects through the session API (consumes the trained system).
fn detect(namer: Namer, files: &[SourceFile]) -> Vec<namer::core::Report> {
    NamerBuilder::new()
        .namer(namer)
        .build()
        .expect("trained source builds")
        .run(files)
        .expect("cacheless run")
        .reports
}

fn config(use_analysis: bool, use_classifier: bool) -> NamerConfig {
    NamerConfig {
        process: ProcessConfig {
            use_analysis,
            ..ProcessConfig::default()
        },
        mining: MiningConfig {
            min_path_count: 4,
            min_support: 15,
            ..MiningConfig::default()
        },
        use_classifier,
        labeled_per_class: 10,
        cv_repeats: 3,
        ..NamerConfig::default()
    }
}

fn precision(
    reports: &[namer::core::Report],
    oracle: &Oracle,
) -> (usize, f64) {
    let tp = reports
        .iter()
        .filter(|r| {
            oracle
                .label(
                    &r.violation.repo,
                    &r.violation.path,
                    r.violation.line,
                    r.violation.original.as_str(),
                    r.violation.suggested.as_str(),
                )
                .is_some()
        })
        .count();
    (
        reports.len(),
        tp as f64 / reports.len().max(1) as f64,
    )
}

#[test]
fn classifier_improves_precision_over_raw_violations() {
    let corpus = Generator::new(CorpusConfig::small(Lang::Python)).generate(13);
    let oracle = corpus.oracle();
    let commits: Vec<(String, String)> = corpus
        .commits
        .iter()
        .map(|c| (c.before.clone(), c.after.clone()))
        .collect();
    let labeler = |v: &namer::core::Violation| {
        oracle
            .label(&v.repo, &v.path, v.line, v.original.as_str(), v.suggested.as_str())
            .is_some()
    };
    let with_c = Namer::train(&corpus.files, &commits, labeler, &config(true, true));
    let without_c = Namer::train(&corpus.files, &commits, labeler, &config(true, false));
    let (n_with, p_with) = precision(&detect(with_c, &corpus.files), &oracle);
    let (n_without, p_without) = precision(&detect(without_c, &corpus.files), &oracle);
    assert!(n_with <= n_without, "classifier only removes reports");
    assert!(
        p_with >= p_without,
        "classifier must not lower precision: {p_with} vs {p_without}"
    );
}

#[test]
fn reports_are_well_formed() {
    let corpus = Generator::new(CorpusConfig::small(Lang::Java)).generate(14);
    let oracle = corpus.oracle();
    let commits: Vec<(String, String)> = corpus
        .commits
        .iter()
        .map(|c| (c.before.clone(), c.after.clone()))
        .collect();
    let namer = Namer::train(
        &corpus.files,
        &commits,
        |v| {
            oracle
                .label(&v.repo, &v.path, v.line, v.original.as_str(), v.suggested.as_str())
                .is_some()
        },
        &config(true, true),
    );
    let reports = detect(namer, &corpus.files);
    assert!(!reports.is_empty());
    for r in &reports {
        let v = &r.violation;
        assert_ne!(v.original, v.suggested, "a fix must change the name");
        assert!(v.line >= 1, "lines are 1-based");
        assert_eq!(v.features.len(), FEATURE_COUNT);
        assert!(v.features.iter().all(|f| f.is_finite()));
        assert!(
            corpus.files.iter().any(|f| f.repo == v.repo && f.path == v.path),
            "report points at a corpus file"
        );
        // The flagged original name is on the reported line (or the report
        // stems from a subtoken of a composite name on that line).
        let file = corpus
            .files
            .iter()
            .find(|f| f.repo == v.repo && f.path == v.path)
            .expect("file exists");
        let line = file.text.lines().nth(v.line as usize - 1).unwrap_or("");
        assert!(
            line.contains(v.original.as_str())
                || line
                    .split(|c: char| !c.is_alphanumeric())
                    .any(|tok| namer::syntax::subtoken::split(tok)
                        .iter()
                        .any(|st| st == v.original.as_str())),
            "original {:?} not on line {:?}",
            v.original,
            line
        );
    }
}

#[test]
fn without_analysis_origin_paths_disappear() {
    let corpus = Generator::new(CorpusConfig::small(Lang::Python)).generate(15);
    let with_a = process(&corpus.files, &config(true, true).process);
    let without_a = process(&corpus.files, &config(false, true).process);
    let count_origin = |p: &namer::core::ProcessedCorpus| {
        p.iter_stmts()
            .flat_map(|(_, s)| s.paths.paths.iter())
            .filter(|path| path.to_string().contains("TestCase"))
            .count()
    };
    assert!(count_origin(&with_a) > 0, "analysis decorates TestCase origins");
    assert_eq!(count_origin(&without_a), 0, "w/o A has no origin nodes");
}

#[test]
fn dedup_keeps_one_report_per_location_and_suggestion() {
    let corpus = Generator::new(CorpusConfig::small(Lang::Python)).generate(16);
    let commits: Vec<(String, String)> = corpus
        .commits
        .iter()
        .map(|c| (c.before.clone(), c.after.clone()))
        .collect();
    let processed = process(&corpus.files, &ProcessConfig::default());
    let det = namer::core::Detector::mine(
        &processed,
        &commits,
        Lang::Python,
        &config(true, true).mining,
    );
    let scan = det.scan(ScanRequest::full(&processed));
    let mut keys: Vec<_> = scan
        .violations
        .iter()
        .map(|v| (v.repo.clone(), v.path.clone(), v.line, v.original, v.suggested))
        .collect();
    let n = keys.len();
    keys.sort();
    keys.dedup();
    assert_eq!(keys.len(), n, "violations are deduplicated per location");
    assert!(scan.raw_violation_count >= n);
}
