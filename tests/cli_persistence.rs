//! Integration: model persistence round trip across the public API (the
//! machinery behind `namer train` / `namer scan`).

use namer::core::{Namer, NamerBuilder, NamerConfig, SavedModel};
use namer::corpus::{CorpusConfig, Generator};
use namer::patterns::MiningConfig;
use namer::syntax::{Lang, SourceFile};

fn config() -> NamerConfig {
    NamerConfig {
        mining: MiningConfig {
            min_path_count: 4,
            min_support: 15,
            ..MiningConfig::default()
        },
        labeled_per_class: 10,
        cv_repeats: 3,
        ..NamerConfig::default()
    }
}

#[test]
fn saved_model_scans_unseen_files() {
    let corpus = Generator::new(CorpusConfig::small(Lang::Python)).generate(2021);
    let oracle = corpus.oracle();
    let commits: Vec<(String, String)> = corpus
        .commits
        .iter()
        .map(|c| (c.before.clone(), c.after.clone()))
        .collect();
    let namer = Namer::train(
        &corpus.files,
        &commits,
        |v| {
            oracle
                .label(&v.repo, &v.path, v.line, v.original.as_str(), v.suggested.as_str())
                .is_some()
        },
        &config(),
    );

    // Round trip through JSON, then scan through the session API.
    let json = SavedModel::from_namer(&namer).to_json().expect("model serialises");
    assert!(json.contains("\"version\""));
    let mut session = NamerBuilder::new()
        .model(SavedModel::from_json(&json).expect("model parses"))
        .config(config())
        .build()
        .expect("saved source builds");

    // Scan a file the system has never seen.
    let unseen = SourceFile::new(
        "user",
        "buggy.py",
        "class TestWidget(TestCase):\n    def test_size(self):\n        widget = load_widget()\n        self.assertTrue(widget.size, 12)\n",
        Lang::Python,
    );
    let reports = session
        .run(std::slice::from_ref(&unseen))
        .expect("cacheless run")
        .reports;
    assert!(
        reports
            .iter()
            .any(|r| r.violation.original.as_str() == "True"
                && r.violation.suggested.as_str() == "Equal"),
        "loaded model finds the assertTrue misuse: {reports:?}"
    );

    // And the fix renders correctly.
    let line = "        self.assertTrue(widget.size, 12)";
    assert_eq!(
        namer::core::fix_line(line, "True", "Equal").as_deref(),
        Some("        self.assertEqual(widget.size, 12)")
    );
}

#[test]
fn model_json_is_reasonably_sized_and_versioned() {
    let corpus = Generator::new(CorpusConfig::small(Lang::Java)).generate(2022);
    let oracle = corpus.oracle();
    let commits: Vec<(String, String)> = corpus
        .commits
        .iter()
        .map(|c| (c.before.clone(), c.after.clone()))
        .collect();
    let namer = Namer::train(
        &corpus.files,
        &commits,
        |v| {
            oracle
                .label(&v.repo, &v.path, v.line, v.original.as_str(), v.suggested.as_str())
                .is_some()
        },
        &config(),
    );
    let model = SavedModel::from_namer(&namer);
    assert_eq!(model.version, namer::core::persist::FORMAT_VERSION);
    assert_eq!(model.lang, Lang::Java);
    let json = model.to_json().expect("model serialises");
    assert!(json.len() > 1_000, "model carries real content");
    // Round trip is stable (same JSON after load + save).
    let again = SavedModel::from_json(&json).unwrap().to_json().unwrap();
    assert_eq!(json, again);
}
