//! Reproducibility: every stage of the system is a pure function of its
//! seed (DESIGN.md §6), and — since the pipeline went parallel — of the
//! seed alone: thread count never changes results (DESIGN.md §7).

use namer::core::{
    process, process_parallel, Detector, Namer, NamerBuilder, NamerConfig, ProcessConfig,
    ScanCache, ScanRequest,
};
use namer::corpus::{CorpusConfig, Generator};
use namer::patterns::{MiningConfig, ShardPlan};
use namer::syntax::{Lang, SourceFile};

fn config() -> NamerConfig {
    NamerConfig {
        mining: MiningConfig {
            min_path_count: 4,
            min_support: 15,
            ..MiningConfig::default()
        },
        labeled_per_class: 10,
        cv_repeats: 3,
        ..NamerConfig::default()
    }
}

#[test]
fn corpus_generation_is_reproducible() {
    let g = Generator::new(CorpusConfig::small(Lang::Python));
    let a = g.generate(99);
    let b = g.generate(99);
    assert_eq!(a.files, b.files);
    assert_eq!(a.injections, b.injections);
    assert_eq!(a.commits.len(), b.commits.len());
}

#[test]
fn mining_and_detection_are_reproducible() {
    let corpus = Generator::new(CorpusConfig::small(Lang::Python)).generate(77);
    let commits: Vec<(String, String)> = corpus
        .commits
        .iter()
        .map(|c| (c.before.clone(), c.after.clone()))
        .collect();
    let run = || {
        let processed = process(&corpus.files, &ProcessConfig::default());
        let det = Detector::mine(&processed, &commits, Lang::Python, &config().mining);
        let scan = det.scan(ScanRequest::full(&processed));
        (
            det.pattern_count(),
            scan.violations
                .iter()
                .map(|v| (v.path.clone(), v.line, v.original, v.suggested))
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn mining_and_detection_are_thread_count_invariant() {
    let corpus = Generator::new(CorpusConfig::small(Lang::Python)).generate(77);
    let commits: Vec<(String, String)> = corpus
        .commits
        .iter()
        .map(|c| (c.before.clone(), c.after.clone()))
        .collect();
    let run = |threads: usize| {
        let processed = process_parallel(&corpus.files, &ProcessConfig::default(), threads);
        let mining = MiningConfig {
            threads,
            ..config().mining
        };
        let det = Detector::mine(&processed, &commits, Lang::Python, &mining);
        let scan = det.scan(ScanRequest::full(&processed).threads(threads));
        (
            det.pattern_count(),
            scan.raw_violation_count,
            scan.files_with_violation,
            scan.repos_with_violation,
            scan.violations
                .iter()
                .map(|v| (v.to_string(), format!("{:?}", v.features)))
                .collect::<Vec<_>>(),
        )
    };
    let serial = run(1);
    for threads in [2, 8] {
        assert_eq!(serial, run(threads), "threads={threads} diverged");
    }
}

#[test]
fn incremental_scan_is_thread_and_dirty_window_invariant() {
    // A warmed cache plus a dirty mix (edited, truncated, and brand-new
    // files) must scan identically at any thread count × dirty-window
    // setting (statement-region splicing vs file-granular, DESIGN.md §14)
    // — and identically to a from-scratch full scan of the same mutated
    // corpus.
    let corpus = Generator::new(CorpusConfig::small(Lang::Python)).generate(77);
    let commits: Vec<(String, String)> = corpus
        .commits
        .iter()
        .map(|c| (c.before.clone(), c.after.clone()))
        .collect();
    let process_config = ProcessConfig::default();
    let processed = process(&corpus.files, &process_config);
    let det = Detector::mine(&processed, &commits, Lang::Python, &config().mining);

    // Warm the cache on the pristine corpus at one thread.
    let mut warmed = ScanCache::empty(det.fingerprint(&process_config, &ShardPlan::unsharded()));
    det.scan(ScanRequest::incremental(
        &corpus.files,
        &process_config,
        &mut warmed,
    ));

    // Dirty mix: edit every 7th file, truncate a few, add a fresh one.
    let mut mutated = corpus.files.clone();
    for (i, f) in mutated.iter_mut().enumerate() {
        if i % 7 == 0 {
            f.text.push_str("\nzz_dirty = 1\n");
        }
    }
    mutated.truncate(mutated.len().saturating_sub(3));
    mutated.push(SourceFile::new(
        "fresh-repo",
        "fresh.py",
        "class T(TestCase):\n    def t(self):\n        self.assertEqual(v.count, 2)\n",
        Lang::Python,
    ));

    let run = |threads: usize, regions: bool| {
        let mut cache = warmed.clone();
        let mut req = ScanRequest::incremental(&mutated, &process_config, &mut cache)
            .threads(threads);
        if !regions {
            req = req.file_granular();
        }
        let scan = det.scan(req);
        let stats = scan.cache.unwrap();
        (
            stats.reused,
            stats.fresh,
            stats.parse_failures,
            scan.raw_violation_count,
            scan.files_with_violation,
            scan.repos_with_violation,
            scan.violations
                .iter()
                .map(|v| (v.to_string(), format!("{:?}", v.features)))
                .collect::<Vec<_>>(),
        )
    };
    let serial = run(1, true);
    for threads in [1, 2, 8] {
        for regions in [true, false] {
            assert_eq!(
                serial,
                run(threads, regions),
                "threads={threads} regions={regions} diverged"
            );
        }
    }

    // The warm dirty scan equals a cold full scan of the mutated corpus.
    let full = det.scan(ScanRequest::full(&process(&mutated, &process_config)));
    let full_key: Vec<(String, String)> = full
        .violations
        .iter()
        .map(|v| (v.to_string(), format!("{:?}", v.features)))
        .collect();
    assert_eq!(serial.6, full_key);
    assert_eq!(serial.3, full.raw_violation_count);
}

#[test]
fn js_full_and_incremental_scans_agree_across_thread_counts() {
    // The JavaScript frontend rides the same determinism contract as
    // Python/Java: a full scan, a warm incremental scan over a dirty mix,
    // and every thread count must all agree byte-for-byte.
    let corpus = Generator::new(CorpusConfig::small(Lang::Js)).generate(88);
    let commits: Vec<(String, String)> = corpus
        .commits
        .iter()
        .map(|c| (c.before.clone(), c.after.clone()))
        .collect();
    let process_config = ProcessConfig::default();
    let processed = process(&corpus.files, &process_config);
    let det = Detector::mine(&processed, &commits, Lang::Js, &config().mining);

    // Warm the cache on the pristine corpus.
    let mut warmed = ScanCache::empty(det.fingerprint(&process_config, &ShardPlan::unsharded()));
    det.scan(ScanRequest::incremental(
        &corpus.files,
        &process_config,
        &mut warmed,
    ));

    // Dirty mix: edit every 5th file, add a fresh one.
    let mut mutated = corpus.files.clone();
    for (i, f) in mutated.iter_mut().enumerate() {
        if i % 5 == 0 {
            f.text.push_str("\nconst zzDirty = 1;\n");
        }
    }
    mutated.push(SourceFile::new(
        "fresh-repo",
        "fresh.js",
        "class Fresh {\n    check(widget) {\n        console.log(widget.count);\n    }\n}\n",
        Lang::Js,
    ));

    let incremental = |threads: usize| {
        let mut cache = warmed.clone();
        let scan = det.scan(
            ScanRequest::incremental(&mutated, &process_config, &mut cache).threads(threads),
        );
        (
            scan.raw_violation_count,
            scan.files_with_violation,
            scan.violations
                .iter()
                .map(|v| (v.to_string(), format!("{:?}", v.features)))
                .collect::<Vec<_>>(),
        )
    };
    let serial = incremental(1);
    for threads in [2, 8] {
        assert_eq!(serial, incremental(threads), "threads={threads} diverged");
    }

    // The warm incremental scan equals a cold full scan of the mutated corpus.
    let full = det.scan(ScanRequest::full(&process(&mutated, &process_config)));
    let full_key: Vec<(String, String)> = full
        .violations
        .iter()
        .map(|v| (v.to_string(), format!("{:?}", v.features)))
        .collect();
    assert_eq!(serial.2, full_key);
    assert_eq!(serial.0, full.raw_violation_count);
}

#[test]
fn trained_system_reports_identically_across_thread_counts() {
    let corpus = Generator::new(CorpusConfig::small(Lang::Python)).generate(66);
    let oracle = corpus.oracle();
    let commits: Vec<(String, String)> = corpus
        .commits
        .iter()
        .map(|c| (c.before.clone(), c.after.clone()))
        .collect();
    let run = |threads: usize| {
        let namer = Namer::train(
            &corpus.files,
            &commits,
            |v| {
                oracle
                    .label(&v.repo, &v.path, v.line, v.original.as_str(), v.suggested.as_str())
                    .is_some()
            },
            &NamerConfig {
                threads,
                ..config()
            },
        );
        let pattern_count = namer.detector.pattern_count();
        let reports = NamerBuilder::new()
            .namer(namer)
            .build()
            .expect("trained source builds")
            .run(&corpus.files)
            .expect("cacheless run")
            .reports;
        (
            pattern_count,
            reports
                .iter()
                .map(|r| (r.to_string(), r.decision.to_bits()))
                .collect::<Vec<_>>(),
        )
    };
    let serial = run(1);
    for threads in [2, 8] {
        assert_eq!(serial, run(threads), "threads={threads} diverged");
    }
}

#[test]
fn trained_system_reports_identically() {
    let corpus = Generator::new(CorpusConfig::small(Lang::Java)).generate(55);
    let oracle = corpus.oracle();
    let commits: Vec<(String, String)> = corpus
        .commits
        .iter()
        .map(|c| (c.before.clone(), c.after.clone()))
        .collect();
    let run = || {
        let namer = Namer::train(
            &corpus.files,
            &commits,
            |v| {
                oracle
                    .label(&v.repo, &v.path, v.line, v.original.as_str(), v.suggested.as_str())
                    .is_some()
            },
            &config(),
        );
        NamerBuilder::new()
            .namer(namer)
            .build()
            .expect("trained source builds")
            .run(&corpus.files)
            .expect("cacheless run")
            .reports
            .iter()
            .map(|r| (r.violation.path.clone(), r.violation.line, r.violation.suggested))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
