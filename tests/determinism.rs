//! Reproducibility: every stage of the system is a pure function of its
//! seed (DESIGN.md §6), and — since the pipeline went parallel — of the
//! seed alone: thread count never changes results (DESIGN.md §7).

use namer::core::{process, process_parallel, Detector, Namer, NamerConfig, ProcessConfig};
use namer::corpus::{CorpusConfig, Generator};
use namer::patterns::MiningConfig;
use namer::syntax::Lang;

fn config() -> NamerConfig {
    NamerConfig {
        mining: MiningConfig {
            min_path_count: 4,
            min_support: 15,
            ..MiningConfig::default()
        },
        labeled_per_class: 10,
        cv_repeats: 3,
        ..NamerConfig::default()
    }
}

#[test]
fn corpus_generation_is_reproducible() {
    let g = Generator::new(CorpusConfig::small(Lang::Python));
    let a = g.generate(99);
    let b = g.generate(99);
    assert_eq!(a.files, b.files);
    assert_eq!(a.injections, b.injections);
    assert_eq!(a.commits.len(), b.commits.len());
}

#[test]
fn mining_and_detection_are_reproducible() {
    let corpus = Generator::new(CorpusConfig::small(Lang::Python)).generate(77);
    let commits: Vec<(String, String)> = corpus
        .commits
        .iter()
        .map(|c| (c.before.clone(), c.after.clone()))
        .collect();
    let run = || {
        let processed = process(&corpus.files, &ProcessConfig::default());
        let det = Detector::mine(&processed, &commits, Lang::Python, &config().mining);
        let scan = det.violations(&processed);
        (
            det.pattern_count(),
            scan.violations
                .iter()
                .map(|v| (v.path.clone(), v.line, v.original, v.suggested))
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn mining_and_detection_are_thread_count_invariant() {
    let corpus = Generator::new(CorpusConfig::small(Lang::Python)).generate(77);
    let commits: Vec<(String, String)> = corpus
        .commits
        .iter()
        .map(|c| (c.before.clone(), c.after.clone()))
        .collect();
    let run = |threads: usize| {
        let processed = process_parallel(&corpus.files, &ProcessConfig::default(), threads);
        let mining = MiningConfig {
            threads,
            ..config().mining
        };
        let det = Detector::mine(&processed, &commits, Lang::Python, &mining);
        let scan = det.violations_with(&processed, threads);
        (
            det.pattern_count(),
            scan.raw_violation_count,
            scan.files_with_violation,
            scan.repos_with_violation,
            scan.violations
                .iter()
                .map(|v| (v.to_string(), format!("{:?}", v.features)))
                .collect::<Vec<_>>(),
        )
    };
    let serial = run(1);
    for threads in [2, 8] {
        assert_eq!(serial, run(threads), "threads={threads} diverged");
    }
}

#[test]
fn trained_system_reports_identically_across_thread_counts() {
    let corpus = Generator::new(CorpusConfig::small(Lang::Python)).generate(66);
    let oracle = corpus.oracle();
    let commits: Vec<(String, String)> = corpus
        .commits
        .iter()
        .map(|c| (c.before.clone(), c.after.clone()))
        .collect();
    let run = |threads: usize| {
        let namer = Namer::train(
            &corpus.files,
            &commits,
            |v| {
                oracle
                    .label(&v.repo, &v.path, v.line, v.original.as_str(), v.suggested.as_str())
                    .is_some()
            },
            &NamerConfig {
                threads,
                ..config()
            },
        );
        (
            namer.detector.pattern_count(),
            namer
                .detect(&corpus.files)
                .iter()
                .map(|r| (r.to_string(), r.decision.to_bits()))
                .collect::<Vec<_>>(),
        )
    };
    let serial = run(1);
    for threads in [2, 8] {
        assert_eq!(serial, run(threads), "threads={threads} diverged");
    }
}

#[test]
fn trained_system_reports_identically() {
    let corpus = Generator::new(CorpusConfig::small(Lang::Java)).generate(55);
    let oracle = corpus.oracle();
    let commits: Vec<(String, String)> = corpus
        .commits
        .iter()
        .map(|c| (c.before.clone(), c.after.clone()))
        .collect();
    let run = || {
        let namer = Namer::train(
            &corpus.files,
            &commits,
            |v| {
                oracle
                    .label(&v.repo, &v.path, v.line, v.original.as_str(), v.suggested.as_str())
                    .is_some()
            },
            &config(),
        );
        namer
            .detect(&corpus.files)
            .iter()
            .map(|r| (r.violation.path.clone(), r.violation.line, r.violation.suggested))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
