//! Reproducibility: every stage of the system is a pure function of its
//! seed (DESIGN.md §6).

use namer::core::{process, Detector, Namer, NamerConfig, ProcessConfig};
use namer::corpus::{CorpusConfig, Generator};
use namer::patterns::MiningConfig;
use namer::syntax::Lang;

fn config() -> NamerConfig {
    NamerConfig {
        mining: MiningConfig {
            min_path_count: 4,
            min_support: 15,
            ..MiningConfig::default()
        },
        labeled_per_class: 10,
        cv_repeats: 3,
        ..NamerConfig::default()
    }
}

#[test]
fn corpus_generation_is_reproducible() {
    let g = Generator::new(CorpusConfig::small(Lang::Python));
    let a = g.generate(99);
    let b = g.generate(99);
    assert_eq!(a.files, b.files);
    assert_eq!(a.injections, b.injections);
    assert_eq!(a.commits.len(), b.commits.len());
}

#[test]
fn mining_and_detection_are_reproducible() {
    let corpus = Generator::new(CorpusConfig::small(Lang::Python)).generate(77);
    let commits: Vec<(String, String)> = corpus
        .commits
        .iter()
        .map(|c| (c.before.clone(), c.after.clone()))
        .collect();
    let run = || {
        let processed = process(&corpus.files, &ProcessConfig::default());
        let det = Detector::mine(&processed, &commits, Lang::Python, &config().mining);
        let scan = det.violations(&processed);
        (
            det.pattern_count(),
            scan.violations
                .iter()
                .map(|v| (v.path.clone(), v.line, v.original, v.suggested))
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn trained_system_reports_identically() {
    let corpus = Generator::new(CorpusConfig::small(Lang::Java)).generate(55);
    let oracle = corpus.oracle();
    let commits: Vec<(String, String)> = corpus
        .commits
        .iter()
        .map(|c| (c.before.clone(), c.after.clone()))
        .collect();
    let run = || {
        let namer = Namer::train(
            &corpus.files,
            &commits,
            |v| {
                oracle
                    .label(&v.repo, &v.path, v.line, v.original.as_str(), v.suggested.as_str())
                    .is_some()
            },
            &config(),
        );
        namer
            .detect(&corpus.files)
            .iter()
            .map(|r| (r.violation.path.clone(), r.violation.line, r.violation.suggested))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
