//! Cross-crate integration: generator → Namer pipeline → oracle scoring.

use namer::core::{Namer, NamerBuilder, NamerConfig, Violation};
use namer::corpus::{CorpusConfig, Generator, Oracle};
use namer::syntax::Lang;
use namer_patterns::MiningConfig;

fn labeler_for(oracle: &Oracle) -> impl Fn(&Violation) -> bool + '_ {
    move |v: &Violation| {
        oracle
            .label(
                &v.repo,
                &v.path,
                v.line,
                v.original.as_str(),
                v.suggested.as_str(),
            )
            .is_some()
    }
}

fn config_for_small() -> NamerConfig {
    NamerConfig {
        mining: MiningConfig {
            min_path_count: 4,
            min_support: 15,
            ..MiningConfig::default()
        },
        labeled_per_class: 25,
        cv_repeats: 10,
        ..NamerConfig::default()
    }
}

fn run_language(lang: Lang, seed: u64) -> (f64, usize, usize) {
    let corpus = Generator::new(CorpusConfig::small(lang)).generate(seed);
    let oracle = corpus.oracle();
    let commits: Vec<(String, String)> = corpus
        .commits
        .iter()
        .map(|c| (c.before.clone(), c.after.clone()))
        .collect();
    let namer = Namer::train(
        &corpus.files,
        &commits,
        labeler_for(&oracle),
        &config_for_small(),
    );
    let reports = NamerBuilder::new()
        .namer(namer)
        .build()
        .expect("trained source builds")
        .run(&corpus.files)
        .expect("cacheless run")
        .reports;
    let labeler = labeler_for(&oracle);
    let true_hits = reports
        .iter()
        .filter(|r| labeler(&r.violation))
        .count();
    let precision = if reports.is_empty() {
        0.0
    } else {
        true_hits as f64 / reports.len() as f64
    };
    // Distinct injected issues recovered (recall numerator).
    let mut hit_lines: Vec<(String, String, u32)> = reports
        .iter()
        .filter(|r| labeler(&r.violation))
        .map(|r| {
            (
                r.violation.repo.clone(),
                r.violation.path.clone(),
                r.violation.line,
            )
        })
        .collect();
    hit_lines.sort();
    hit_lines.dedup();
    (precision, hit_lines.len(), corpus.injections.len())
}

#[test]
fn python_end_to_end_finds_issues_with_reasonable_precision() {
    let (precision, found, injected) = run_language(Lang::Python, 42);
    assert!(injected > 10, "too few injections: {injected}");
    assert!(found >= injected / 4, "found {found}/{injected}");
    assert!(precision > 0.4, "precision {precision}");
}

#[test]
fn java_end_to_end_finds_issues_with_reasonable_precision() {
    let (precision, found, injected) = run_language(Lang::Java, 43);
    assert!(injected > 10, "too few injections: {injected}");
    assert!(found >= injected / 4, "found {found}/{injected}");
    assert!(precision > 0.4, "precision {precision}");
}

#[test]
fn js_end_to_end_finds_issues_with_reasonable_precision() {
    // The newest frontend rides the identical pipeline; its template bank
    // mirrors Java's, so it gets the same floors.
    let (precision, found, injected) = run_language(Lang::Js, 44);
    assert!(injected > 10, "too few injections: {injected}");
    assert!(found >= injected / 4, "found {found}/{injected}");
    assert!(precision > 0.4, "precision {precision}");
}
