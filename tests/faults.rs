//! Fault-injection harness for crash-safe persistence and fault-tolerant
//! ingestion (DESIGN.md §11).
//!
//! Two contracts are exercised end to end through the public API:
//!
//! * **Crash safety** — a process killed at *any* operation of a model or
//!   scan-cache save leaves the destination holding the complete old
//!   contents or the complete new contents, never a truncation. The
//!   kill-point matrix is sized by counting a clean run's VFS operations,
//!   then killing at every index with several partial-write variants.
//! * **Graceful degradation** — unreadable and non-UTF-8 inputs are
//!   quarantined, transient I/O errors are retried, and the healthy subset
//!   of a salted corpus produces byte-identical findings to a fault-free
//!   run over the same healthy files.

use namer::core::{
    atomic_write, CacheEntry, CacheLoadStatus, CorpusReader, Fault, FaultSchedule, FaultVfs,
    Namer, NamerBuilder, NamerConfig, RealFs, RetryPolicy, SavedModel, ScanCache, Violation,
};
use namer::observe::Counter;
use namer::patterns::MiningConfig;
use namer::syntax::{content_digest, Lang, SourceFile};
use proptest::prelude::*;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

const IDIOM: &str = "class T(TestCase):\n    def t(self):\n        self.assertEqual(v.count, 3)\n";
const MISUSE: &str = "class T(TestCase):\n    def t(self):\n        self.assertTrue(v.count, 3)\n";

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "namer-faults-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn write(dir: &Path, rel: &str, contents: &[u8]) {
    let path = dir.join(rel);
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(path, contents).unwrap();
}

/// An in-memory corpus with one violation. Every file gets a unique
/// trailing statement so content digests are distinct — `extra` files then
/// genuinely change the digest set (and therefore the saved cache bytes).
fn corpus(extra: usize) -> Vec<SourceFile> {
    let mut files: Vec<SourceFile> = (0..10 + extra)
        .map(|i| {
            SourceFile::new(
                format!("r{}", i % 3),
                format!("f{i}.py"),
                format!("{IDIOM}x{i} = {i}\n"),
                Lang::Python,
            )
        })
        .collect();
    files.push(SourceFile::new("r0", "bug.py", MISUSE, Lang::Python));
    files
}

/// Trains one system (expensive) and snapshots two byte-distinct model
/// JSONs: the real one and a variant with a flipped flag, the "old vs new"
/// pair of the model kill-point matrix.
fn model_jsons() -> &'static (String, String) {
    static JSONS: OnceLock<(String, String)> = OnceLock::new();
    JSONS.get_or_init(|| {
        let commits = vec![(
            "class T(TestCase):\n    def t(self):\n        self.assertTrue(v.count, 1)\n"
                .to_owned(),
            "class T(TestCase):\n    def t(self):\n        self.assertEqual(v.count, 1)\n"
                .to_owned(),
        )];
        let config = NamerConfig {
            mining: MiningConfig {
                min_path_count: 2,
                min_support: 5,
                ..MiningConfig::default()
            },
            labeled_per_class: 3,
            cv_repeats: 2,
            ..NamerConfig::default()
        };
        let namer = Namer::train(
            &corpus(30),
            &commits,
            |v: &Violation| v.original.as_str() == "True",
            &config,
        );
        let mut model = SavedModel::from_namer(&namer);
        let old = model.to_json().expect("model serialises");
        model.use_analysis = !model.use_analysis;
        let altered = model.to_json().expect("model serialises");
        assert_ne!(old, altered);
        (old, altered)
    })
}

fn session(cache_dir: Option<&Path>) -> namer::core::DetectSession {
    let (json, _) = model_jsons();
    let builder = NamerBuilder::new().model(SavedModel::from_json(json).unwrap());
    match cache_dir {
        Some(dir) => builder.cache_dir(dir),
        None => builder,
    }
    .build()
    .expect("session builds")
}

fn report_strings(reports: &[namer::core::Report]) -> Vec<String> {
    reports.iter().map(|r| r.to_string()).collect()
}

// ----- kill-point matrices ----------------------------------------------------

#[test]
fn cache_kill_point_matrix_leaves_old_or_new_cache() {
    let dir = scratch("cache-kill");
    let path = dir.join("scan-cache.json");
    let fp = 42u64;
    let mut old_cache = ScanCache::empty(fp);
    old_cache.insert(content_digest("a = 1\n", Lang::Python), CacheEntry::ParseFailure);
    let old_bytes = old_cache.to_binary();
    let mut new_cache = old_cache.clone();
    new_cache.insert(content_digest("b = 2\n", Lang::Python), CacheEntry::ParseFailure);
    let new_bytes = new_cache.to_binary();
    assert_ne!(old_bytes, new_bytes);

    // Size the matrix by counting a clean save's operations.
    let probe = FaultVfs::real(FaultSchedule::new());
    new_cache.save_via(&probe, &path).unwrap();
    let ops = probe.ops();
    assert!(ops >= 2, "a crash-safe save is at least write + rename");

    for k in 0..ops {
        for landed in [None, Some(0), Some(7), Some(usize::MAX)] {
            old_cache.save(&path).unwrap();
            let vfs = FaultVfs::real(FaultSchedule::kill_at(k, landed));
            assert!(
                new_cache.save_via(&vfs, &path).is_err(),
                "kill at op {k} must surface"
            );
            assert!(vfs.killed());
            // What a restarted process sees: the complete old cache or the
            // complete new one — never a corrupt hybrid.
            let bytes = std::fs::read(&path).unwrap();
            assert!(
                bytes == old_bytes || bytes == new_bytes,
                "k={k} landed={landed:?}: truncated cache on disk"
            );
            let (loaded, status) = ScanCache::load(&path, fp);
            assert!(
                matches!(status, CacheLoadStatus::Warm(_)),
                "k={k} landed={landed:?}: load degraded to {status:?}"
            );
            assert!(loaded == old_cache || loaded == new_cache);
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn model_kill_point_matrix_leaves_old_or_new_model() {
    let (old_json, new_json) = model_jsons();
    let dir = scratch("model-kill");
    let path = dir.join("model.bin");
    let old = SavedModel::from_json(old_json).unwrap();
    let new = SavedModel::from_json(new_json).unwrap();
    let old_bytes = old.to_binary().unwrap();
    let new_bytes = new.to_binary().unwrap();
    assert_ne!(old_bytes, new_bytes);

    let probe = FaultVfs::real(FaultSchedule::new());
    new.save_via(&probe, &path).unwrap();
    let ops = probe.ops();

    for k in 0..ops {
        for landed in [None, Some(0), Some(100), Some(usize::MAX)] {
            old.save(&path).unwrap();
            let vfs = FaultVfs::real(FaultSchedule::kill_at(k, landed));
            assert!(new.save_via(&vfs, &path).is_err(), "kill at op {k} must surface");
            let bytes = std::fs::read(&path).unwrap();
            assert!(
                bytes == old_bytes || bytes == new_bytes,
                "k={k} landed={landed:?}: truncated model on disk"
            );
            // A restarted process loads a usable model either way, and its
            // re-encoding is byte-identical to what survived on disk.
            let loaded = SavedModel::load_via(&RealFs, &path).expect("model loads after crash");
            assert_eq!(loaded.to_binary().unwrap(), bytes);
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

// ----- binary-container corruption --------------------------------------------

#[test]
fn corrupt_binary_model_is_an_error_never_a_wrong_model() {
    let (json, _) = model_jsons();
    let model = SavedModel::from_json(json).unwrap();
    let dir = scratch("model-corrupt");
    let path = dir.join("model.bin");
    model.save(&path).unwrap();
    let good = std::fs::read(&path).unwrap();

    // Every truncation point: load must fail — never return a model built
    // from half a file.
    for cut in 0..good.len() {
        std::fs::write(&path, &good[..cut]).unwrap();
        assert!(
            SavedModel::load_via(&RealFs, &path).is_err(),
            "truncation at {cut} loaded"
        );
    }
    // Single-bit flips past the digested region: the content digest (or a
    // structural check) must reject every one of them.
    for i in (0..good.len()).step_by(11) {
        for bit in [0u8, 3, 7] {
            let mut bad = good.clone();
            bad[i] ^= 1 << bit;
            if bad == good {
                continue;
            }
            std::fs::write(&path, &bad).unwrap();
            match SavedModel::load_via(&RealFs, &path) {
                // Flips inside the magic make the sniffer see "not binary",
                // and non-UTF-8 garbage is still an error, never a model.
                Err(_) => {}
                Ok(loaded) => panic!(
                    "flip at byte {i} bit {bit} produced a model ({} patterns)",
                    loaded.patterns.len()
                ),
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_binary_cache_degrades_cold_never_wrong() {
    let dir = scratch("cache-corrupt");
    let cache_path = dir.join("scan-cache.json");
    let files = corpus(0);

    // Seed a real warm cache through a session run.
    session(Some(&dir)).run(&files).unwrap();
    let good = std::fs::read(&cache_path).unwrap();
    let expected = report_strings(&session(None).run(&files).unwrap().reports);

    let mut salted: Vec<Vec<u8>> = Vec::new();
    for cut in (0..good.len()).step_by(7) {
        salted.push(good[..cut].to_vec());
    }
    for i in (0..good.len()).step_by(13) {
        let mut bad = good.clone();
        bad[i] ^= 0x10;
        if bad != good {
            salted.push(bad);
        }
    }
    for bad in salted {
        atomic_write(&RealFs, &cache_path, &bad).unwrap();
        let mut fresh = session(Some(&dir));
        // A corrupt cache is a cold (or mismatched) start — never an error,
        // and never wrong findings.
        assert!(
            !matches!(fresh.cache_status(), Some(CacheLoadStatus::Warm(_))),
            "corrupt cache loaded warm: {:?}",
            fresh.cache_status()
        );
        let outcome = fresh.run(&files).unwrap();
        assert_eq!(report_strings(&outcome.reports), expected);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn legacy_json_files_still_load_behind_the_sniff() {
    let dir = scratch("legacy-json");
    let (json, _) = model_jsons();

    // A JSON-era model file loads through the same entry point as binary.
    let model_path = dir.join("model.json");
    std::fs::write(&model_path, json).unwrap();
    let loaded = SavedModel::load_via(&RealFs, &model_path).unwrap();
    assert_eq!(loaded.to_json().unwrap(), *json);

    // A JSON-era scan cache on disk comes up warm in a session, and the
    // next save rewrites it in the binary container.
    let files = corpus(0);
    session(Some(&dir)).run(&files).unwrap();
    let cache_path = dir.join("scan-cache.json");
    let binary = std::fs::read(&cache_path).unwrap();
    let (cache, status) = ScanCache::load(&cache_path, session(Some(&dir)).namer().scan_fingerprint());
    assert!(matches!(status, CacheLoadStatus::Warm(_)));
    atomic_write(&RealFs, &cache_path, cache.to_json().unwrap().as_bytes()).unwrap();

    let mut fresh = session(Some(&dir));
    assert!(
        matches!(fresh.cache_status(), Some(CacheLoadStatus::Warm(_))),
        "JSON cache did not load warm: {:?}",
        fresh.cache_status()
    );
    fresh.run(&files).unwrap();
    assert_eq!(
        std::fs::read(&cache_path).unwrap(),
        binary,
        "resave did not migrate the JSON cache to the binary container"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn v1_cache_migrates_cold_never_wrong_at_every_kill_point() {
    let dir = scratch("v1-migrate");
    let cache_path = dir.join("scan-cache.json");
    let files = corpus(0);
    let expected = report_strings(&session(None).run(&files).unwrap().reports);

    // A v1-era cache: the file-granular format the statement-region format
    // replaced (DESIGN.md §14). It carries the *current* fingerprint and a
    // poisoned ParseFailure entry for every corpus file — state that would
    // suppress every finding if a v2 session honored it. Only the version
    // check stands between these bytes and wrong output.
    let fp = session(Some(&dir)).namer().scan_fingerprint();
    let poisoned: Vec<String> = files
        .iter()
        .map(|f| format!("\"{}\":\"ParseFailure\"", content_digest(&f.text, f.lang).to_hex()))
        .collect();
    let v1_bytes = format!(
        "{{\"version\":1,\"fingerprint\":{fp},\"entries\":{{{}}}}}",
        poisoned.join(",")
    )
    .into_bytes();
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    atomic_write(&RealFs, &cache_path, &v1_bytes).unwrap();

    // The clean migration: the old cache is a version-mismatch cold start,
    // the findings match a cacheless run, and the resave rewrites the file
    // in the current format so the next session comes up warm.
    let mut migrating = session(Some(&dir));
    assert_eq!(
        migrating.cache_status(),
        Some(CacheLoadStatus::VersionMismatch),
        "v1 cache must be rejected by version, not loaded or errored"
    );
    let outcome = migrating.run(&files).unwrap();
    assert_eq!(report_strings(&outcome.reports), expected);
    let new_bytes = std::fs::read(&cache_path).unwrap();
    assert_ne!(new_bytes, v1_bytes, "migration did not rewrite the cache");
    let mut warm = session(Some(&dir));
    assert!(matches!(warm.cache_status(), Some(CacheLoadStatus::Warm(_))));
    assert_eq!(report_strings(&warm.run(&files).unwrap().reports), expected);

    // The kill-point row: size the migration's VFS-operation matrix with a
    // fault-free run, then crash at every operation. After each crash the
    // disk holds the complete v1 bytes or the complete v2 bytes, and a
    // restarted session reproduces the cacheless findings either way.
    let (json, _) = model_jsons();
    atomic_write(&RealFs, &cache_path, &v1_bytes).unwrap();
    let probe = Arc::new(FaultVfs::real(FaultSchedule::new()));
    let mut sized = NamerBuilder::new()
        .model(SavedModel::from_json(json).unwrap())
        .cache_dir(&dir)
        .vfs(probe.clone())
        .build()
        .unwrap();
    sized.run(&files).unwrap();
    let ops = probe.ops();
    assert_eq!(std::fs::read(&cache_path).unwrap(), new_bytes);

    for k in 0..ops {
        atomic_write(&RealFs, &cache_path, &v1_bytes).unwrap();
        let vfs = Arc::new(FaultVfs::real(FaultSchedule::kill_at(k, Some(usize::MAX))));
        let result = NamerBuilder::new()
            .model(SavedModel::from_json(json).unwrap())
            .cache_dir(&dir)
            .vfs(vfs)
            .build()
            .and_then(|mut s| s.run(&files));
        assert!(result.is_err(), "kill at op {k} must surface as an error");
        let bytes = std::fs::read(&cache_path).unwrap();
        assert!(
            bytes == v1_bytes || bytes == new_bytes,
            "op {k}: half-migrated cache on disk"
        );
        let mut fresh = session(Some(&dir));
        assert!(
            matches!(
                fresh.cache_status(),
                Some(CacheLoadStatus::VersionMismatch) | Some(CacheLoadStatus::Warm(_))
            ),
            "op {k}: cache degraded to {:?} after crash",
            fresh.cache_status()
        );
        assert_eq!(
            report_strings(&fresh.run(&files).unwrap().reports),
            expected,
            "op {k}: migration crash changed findings"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn session_survives_kill_at_every_cache_operation() {
    let dir = scratch("session-kill");
    let cache_path = dir.join("scan-cache.json");
    let files_a = corpus(0);
    let files_b = corpus(2);

    // A clean cached run over corpus A seeds the "old" cache; corpus B
    // (a superset) produces a different "new" cache.
    session(Some(&dir)).run(&files_a).unwrap();
    let old_bytes = std::fs::read(&cache_path).unwrap();

    let expected = report_strings(&session(None).run(&files_b).unwrap().reports);

    // Size the matrix: one clean cached run over B through a fault-free
    // FaultVfs counts every VFS operation the session performs.
    let (json, _) = model_jsons();
    let probe = Arc::new(FaultVfs::real(FaultSchedule::new()));
    let mut sized = NamerBuilder::new()
        .model(SavedModel::from_json(json).unwrap())
        .cache_dir(&dir)
        .vfs(probe.clone())
        .build()
        .unwrap();
    sized.run(&files_b).unwrap();
    let ops = probe.ops();
    let new_bytes = std::fs::read(&cache_path).unwrap();
    assert_ne!(old_bytes, new_bytes);

    for k in 0..ops {
        atomic_write(&RealFs, &cache_path, &old_bytes).unwrap();
        let vfs = Arc::new(FaultVfs::real(FaultSchedule::kill_at(k, Some(usize::MAX))));
        let result = NamerBuilder::new()
            .model(SavedModel::from_json(json).unwrap())
            .cache_dir(&dir)
            .vfs(vfs)
            .build()
            .and_then(|mut s| s.run(&files_b));
        assert!(result.is_err(), "kill at op {k} must surface as an error");
        let bytes = std::fs::read(&cache_path).unwrap();
        assert!(
            bytes == old_bytes || bytes == new_bytes,
            "op {k}: truncated cache on disk"
        );
        // The restart: a fresh session loads the surviving cache warm and
        // reproduces the full scan's findings exactly.
        let mut fresh = session(Some(&dir));
        assert!(
            matches!(fresh.cache_status(), Some(CacheLoadStatus::Warm(_))),
            "op {k}: cache degraded to {:?} after crash",
            fresh.cache_status()
        );
        let outcome = fresh.run(&files_b).unwrap();
        assert_eq!(report_strings(&outcome.reports), expected, "op {k}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

// ----- graceful degradation ---------------------------------------------------

#[test]
fn quarantined_inputs_do_not_change_healthy_findings() {
    let dir = scratch("quarantine");
    for i in 0..6 {
        write(&dir, &format!("r{}/f{i}.py", i % 2), IDIOM.as_bytes());
    }
    write(&dir, "r0/bug.py", MISUSE.as_bytes());
    // The salt: a non-UTF-8 source and a file that fails with a permanent
    // error even after retries.
    write(&dir, "r0/binary.py", b"\xc3\x28\xff\xfe");
    write(&dir, "r1/locked.py", IDIOM.as_bytes());

    let vfs = FaultVfs::real(
        FaultSchedule::new().on_path("locked.py", Fault::Err(io::ErrorKind::PermissionDenied)),
    );
    let mut reader = CorpusReader::new(&vfs);
    let files = reader.collect_sources(&dir, Lang::Python).unwrap();
    let diag = reader.finish();
    assert_eq!(diag.quarantined.len(), 2);

    // Fault-free ingestion of the same corpus with the hostile files
    // removed must be byte-identical…
    std::fs::remove_file(dir.join("r0/binary.py")).unwrap();
    std::fs::remove_file(dir.join("r1/locked.py")).unwrap();
    let mut clean_reader = CorpusReader::new(&RealFs);
    let clean_files = clean_reader.collect_sources(&dir, Lang::Python).unwrap();
    assert!(clean_reader.finish().is_clean());
    assert_eq!(files, clean_files);

    // …and so must the findings; the diagnostics surface on the outcome
    // and in the run's own metrics.
    let (json, _) = model_jsons();
    let mut salted = NamerBuilder::new()
        .model(SavedModel::from_json(json).unwrap())
        .ingest_diagnostics(diag)
        .build()
        .unwrap();
    let outcome = salted.run(&files).unwrap();
    let clean_outcome = session(None).run(&clean_files).unwrap();
    assert_eq!(
        report_strings(&outcome.reports),
        report_strings(&clean_outcome.reports)
    );
    assert_eq!(outcome.diagnostics.quarantined.len(), 2);
    assert_eq!(outcome.metrics.counter(Counter::QuarantinedFiles), 2);
    assert_eq!(clean_outcome.metrics.counter(Counter::QuarantinedFiles), 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn seeded_transient_faults_only_move_the_retry_counter() {
    let dir = scratch("transient");
    for i in 0..6 {
        write(&dir, &format!("r{}/f{i}.py", i % 2), IDIOM.as_bytes());
    }
    let mut clean_reader = CorpusReader::new(&RealFs);
    let clean = clean_reader.collect_sources(&dir, Lang::Python).unwrap();

    // Seed 1 deterministically faults operation 0 (guaranteeing at least
    // one retry) and never produces more than 5 consecutive faults, so
    // 8 immediate attempts always recover.
    let vfs = FaultVfs::real(FaultSchedule::seeded_transient(1, 400, 30));
    let mut reader = CorpusReader::new(&vfs).retry_policy(RetryPolicy::immediate(8));
    let files = reader.collect_sources(&dir, Lang::Python).unwrap();
    let diag = reader.finish();
    assert_eq!(files, clean);
    assert!(diag.quarantined.is_empty());
    assert!(diag.io_retries >= 1, "operation 0 faults under seed 1");
    std::fs::remove_dir_all(&dir).ok();
}

#[cfg(unix)]
#[test]
fn symlink_cycles_are_reported_not_fatal() {
    let dir = scratch("cycle");
    write(&dir, "r0/a.py", IDIOM.as_bytes());
    std::os::unix::fs::symlink(&dir, dir.join("r0/loop")).unwrap();
    let mut reader = CorpusReader::new(&RealFs);
    let files = reader.collect_sources(&dir, Lang::Python).unwrap();
    assert_eq!(files.len(), 1);
    let diag = reader.finish();
    assert_eq!(diag.quarantined.len(), 1);
    assert_eq!(
        diag.quarantined[0].reason,
        namer::core::QuarantineReason::SymlinkCycle
    );
    std::fs::remove_dir_all(&dir).ok();
}

// ----- quarantine-equivalence property ----------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Across random corpora salted with random unhealthy files, ingestion
    /// yields exactly the healthy subset (byte-identical, sorted) and
    /// quarantines exactly the unhealthy files.
    #[test]
    fn faulted_ingestion_yields_exactly_the_healthy_subset(
        specs in proptest::collection::vec((0u8..3, 0u8..2), 1..8),
        bad in 0usize..3,
        locked in 0usize..3,
    ) {
        let dir = scratch("prop");
        let mut expected = Vec::new();
        for (i, &(r, t)) in specs.iter().enumerate() {
            let repo = format!("r{r}");
            let rel = format!("{repo}/f{i}.py");
            let text = if t == 0 { IDIOM } else { MISUSE };
            write(&dir, &rel, text.as_bytes());
            expected.push(SourceFile::new(repo, rel, text, Lang::Python));
        }
        for j in 0..bad {
            write(&dir, &format!("rx/bad{j}.py"), b"\xff\xfe\xc3\x28");
        }
        let mut schedule = FaultSchedule::new();
        for j in 0..locked {
            write(&dir, &format!("rx/locked{j}.py"), b"x = 1\n");
            schedule = schedule.on_path(
                format!("locked{j}.py"),
                Fault::Err(io::ErrorKind::PermissionDenied),
            );
        }

        let vfs = FaultVfs::real(schedule);
        let mut reader = CorpusReader::new(&vfs);
        let files = reader.collect_sources(&dir, Lang::Python).unwrap();
        let diag = reader.finish();

        expected.sort_by(|a, b| {
            (a.repo.clone(), a.path.clone()).cmp(&(b.repo.clone(), b.path.clone()))
        });
        prop_assert_eq!(&files, &expected);
        prop_assert_eq!(diag.quarantined.len(), bad + locked);
        prop_assert!(diag.quarantined.iter().all(|q| {
            let name = q.path.file_name().unwrap().to_string_lossy().into_owned();
            name.starts_with("bad") || name.starts_with("locked")
        }));
        std::fs::remove_dir_all(&dir).ok();
    }
}
