//! Integration: the binary model container versus legacy JSON versus the
//! model registry (DESIGN.md §12).
//!
//! The contract under test: *how* a model reached the session — parsed from
//! JSON, decoded from the binary container, or handed out shared by a
//! [`ModelRegistry`] — must not leave a trace in the findings. Every
//! (source × file-threads × pattern-shards) grid point must produce
//! byte-identical reports and scan statistics.

use namer::core::{ModelRegistry, Namer, NamerBuilder, NamerConfig, SavedModel};
use namer::corpus::{CorpusConfig, Generator};
use namer::patterns::{MiningConfig, ShardPlan};
use namer::syntax::{Lang, SourceFile};
use std::path::PathBuf;
use std::sync::Arc;

fn config() -> NamerConfig {
    NamerConfig {
        mining: MiningConfig {
            min_path_count: 4,
            min_support: 15,
            ..MiningConfig::default()
        },
        labeled_per_class: 10,
        cv_repeats: 3,
        ..NamerConfig::default()
    }
}

/// Trains once; writes the snapshot as both a JSON file and a binary file
/// inside a scratch model directory the registry can serve from.
fn trained_setup(seed: u64) -> (Vec<SourceFile>, PathBuf) {
    trained_setup_for(Lang::Python, seed)
}

fn trained_setup_for(lang: Lang, seed: u64) -> (Vec<SourceFile>, PathBuf) {
    let corpus = Generator::new(CorpusConfig::small(lang)).generate(seed);
    let oracle = corpus.oracle();
    let commits: Vec<(String, String)> = corpus
        .commits
        .iter()
        .map(|c| (c.before.clone(), c.after.clone()))
        .collect();
    let namer = Namer::train(
        &corpus.files,
        &commits,
        |v| {
            oracle
                .label(&v.repo, &v.path, v.line, v.original.as_str(), v.suggested.as_str())
                .is_some()
        },
        &config(),
    );
    let model = SavedModel::from_namer(&namer);
    let dir = std::env::temp_dir().join(format!(
        "namer-formats-{seed}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    model.save(&dir.join("trained.bin")).expect("binary save");
    std::fs::write(
        dir.join("legacy.json"),
        model.to_json().expect("model serialises"),
    )
    .expect("json save");
    (corpus.files, dir)
}

/// How the model reaches the session.
enum Via {
    Json,
    Binary,
    Registry,
}

fn scan_key(files: &[SourceFile], dir: &PathBuf, via: &Via, threads: usize, shards: usize) -> String {
    let sourced = match via {
        // Both files decode through the sniffing loader; what differs is
        // the bytes on disk.
        Via::Json => NamerBuilder::new()
            .model(SavedModel::load(&dir.join("legacy.json")).expect("json model loads")),
        Via::Binary => NamerBuilder::new()
            .model(SavedModel::load(&dir.join("trained.bin")).expect("binary model loads")),
        Via::Registry => {
            // `legacy.json` and `trained.bin` hold the same model, so the
            // registry directory is ambiguous only in name, not content;
            // serve the binary one by name.
            let registry =
                ModelRegistry::open_via(Arc::new(namer::core::RealFs), dir, usize::MAX)
                    .expect("registry opens");
            NamerBuilder::new()
                .registry(&registry, "trained")
                .expect("registry source resolves")
        }
    };
    let mut session = sourced
        .config(config())
        .threads(threads)
        .shard_plan(ShardPlan {
            shards,
            min_patterns: 0,
        })
        .build()
        .expect("session builds");
    let outcome = session.run(files).expect("cacheless run");
    let mut key = String::new();
    for r in &outcome.reports {
        key.push_str(&format!("{r} {:x}\n", r.decision.to_bits()));
    }
    key.push_str(&format!(
        "raw={} files={} repos={}\n",
        outcome.scan.raw_violation_count,
        outcome.scan.files_with_violation,
        outcome.scan.repos_with_violation
    ));
    key
}

#[test]
fn findings_are_byte_identical_across_formats_and_the_grid() {
    let (files, dir) = trained_setup(2021);
    let baseline = scan_key(&files, &dir, &Via::Json, 1, 1);
    assert!(!baseline.is_empty());
    for via in [Via::Json, Via::Binary, Via::Registry] {
        for threads in [1usize, 2, 8] {
            for shards in [1usize, 4] {
                assert_eq!(
                    baseline,
                    scan_key(&files, &dir, &via, threads, shards),
                    "diverged at threads={threads} shards={shards}"
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn js_model_round_trips_through_the_binary_container() {
    // JavaScript's frozen model tag (registry tag 2) survives the binary
    // container: a JS-trained model reloads with its language intact and
    // produces identical findings from either on-disk format.
    let (files, dir) = trained_setup_for(Lang::Js, 2029);
    let loaded = SavedModel::load(&dir.join("trained.bin")).expect("binary model loads");
    assert_eq!(loaded.into_namer(config()).lang(), Lang::Js);
    assert_eq!(
        scan_key(&files, &dir, &Via::Json, 1, 1),
        scan_key(&files, &dir, &Via::Binary, 1, 1)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn registry_names_are_file_stems_and_sole_models_resolve() {
    let (_, dir) = trained_setup(2027);
    let registry = ModelRegistry::open(&dir, usize::MAX).expect("registry opens");
    assert_eq!(registry.names(), ["legacy", "trained"]);
    assert!(registry.sole_name().is_none(), "two models — no sole name");

    // Both formats serve through the registry and describe the same model.
    let legacy = registry.get("legacy").expect("json model serves");
    let trained = registry.get("trained").expect("binary model serves");
    assert_eq!(
        legacy.to_json().expect("model serialises"),
        trained.to_json().expect("model serialises")
    );

    std::fs::remove_file(dir.join("legacy.json")).unwrap();
    let sole = ModelRegistry::open(&dir, usize::MAX).expect("registry reopens");
    assert_eq!(sole.sole_name(), Some("trained"));
    let _ = std::fs::remove_dir_all(&dir);
}
