//! Differential harness for the incremental scan (DESIGN.md §8): under any
//! mix of file edits, additions, and deletions, the cache-backed scan must
//! produce byte-identical output to a full scan from scratch — and damaged
//! or mismatched caches must degrade to a cold (correct) scan, never a
//! panic or a wrong answer.

use namer::core::{
    process, CacheLoadStatus, Detector, ProcessConfig, ScanCache, ScanResult,
    CACHE_FORMAT_VERSION,
};
use namer::patterns::MiningConfig;
use namer::syntax::{Lang, SourceFile};
use proptest::prelude::*;
use proptest::sample::Index;
use std::sync::OnceLock;

/// File bodies the generated corpora draw from: the dominant idiom, the
/// injected misuse, unrelated code, and the degenerate cases (empty,
/// whitespace-only, unparsable).
const TEMPLATES: &[&str] = &[
    "class T(TestCase):\n    def test_a(self):\n        self.assertEqual(value.count, 4)\n",
    "class T(TestCase):\n    def test_b(self):\n        self.assertTrue(value.count, 4)\n",
    "class T(TestCase):\n    def test_c(self):\n        self.assertEqual(other.size, 1)\n",
    "x = 1\n",
    "",
    "   \n\n",
    "def broken(:\n",
    "class T(TestCase):\n    def test_d(self):\n        self.assertTrue(value.count, 9)\n\nclass U(TestCase):\n    def test_e(self):\n        self.assertEqual(value.count, 9)\n",
];

/// Mines one detector (expensive) shared by every test and proptest case.
fn mined() -> &'static (Detector, ProcessConfig) {
    static DET: OnceLock<(Detector, ProcessConfig)> = OnceLock::new();
    DET.get_or_init(|| {
        let mut files: Vec<SourceFile> = (0..40)
            .map(|i| {
                SourceFile::new(
                    format!("r{}", i % 5),
                    format!("train{i}.py"),
                    TEMPLATES[0],
                    Lang::Python,
                )
            })
            .collect();
        files.push(SourceFile::new("r0", "bad.py", TEMPLATES[1], Lang::Python));
        let commits = vec![(
            "class T(TestCase):\n    def t(self):\n        self.assertTrue(v.count, 1)\n"
                .to_owned(),
            "class T(TestCase):\n    def t(self):\n        self.assertEqual(v.count, 1)\n"
                .to_owned(),
        )];
        let config = ProcessConfig::default();
        let corpus = process(&files, &config);
        let det = Detector::mine(
            &corpus,
            &commits,
            Lang::Python,
            &MiningConfig {
                min_path_count: 2,
                min_support: 5,
                ..MiningConfig::default()
            },
        );
        assert!(det.pattern_count() > 0, "harness needs mined patterns");
        (det, config)
    })
}

/// Builds a corpus from `(repo, template)` picks, named by position.
fn build_files(specs: &[(u8, u8)]) -> Vec<SourceFile> {
    specs
        .iter()
        .enumerate()
        .map(|(i, &(r, t))| {
            SourceFile::new(
                format!("repo{r}"),
                format!("f{i}.py"),
                TEMPLATES[t as usize % TEMPLATES.len()],
                Lang::Python,
            )
        })
        .collect()
}

/// Everything observable about a scan, bitwise (features via `to_bits`).
#[allow(clippy::type_complexity)]
fn key(scan: &ScanResult) -> (Vec<(String, usize, bool, Vec<u64>)>, usize, usize, usize, usize) {
    (
        scan.violations
            .iter()
            .map(|v| {
                (
                    v.to_string(),
                    v.pattern_idx,
                    v.detected_by_both,
                    v.features.iter().map(|f| f.to_bits()).collect(),
                )
            })
            .collect(),
        scan.raw_violation_count,
        scan.files_scanned,
        scan.files_with_violation,
        scan.repos_with_violation,
    )
}

/// The ground truth: process + scan everything from scratch.
fn full_scan(det: &Detector, config: &ProcessConfig, files: &[SourceFile]) -> ScanResult {
    det.violations(&process(files, config))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The acceptance-criteria property: across ≥ 100 random corpora and
    /// random mutations of them, a cold incremental scan, a warm
    /// incremental scan of the mutated corpus, and a reloaded-from-JSON
    /// warm scan all match the full scan bit for bit.
    #[test]
    fn incremental_scan_matches_full_scan(
        base in proptest::collection::vec((0u8..4, 0u8..TEMPLATES.len() as u8), 1..12),
        edits in proptest::collection::vec((any::<Index>(), 0u8..TEMPLATES.len() as u8), 0..6),
        drops in proptest::collection::vec(any::<Index>(), 0..3),
        adds in proptest::collection::vec((0u8..4, 0u8..TEMPLATES.len() as u8), 0..4),
    ) {
        let (det, config) = mined();
        let fingerprint = det.fingerprint(config);
        let files = build_files(&base);

        // Cold incremental == full.
        let mut cache = ScanCache::empty(fingerprint);
        let cold = det.violations_incremental(&files, config, &mut cache, 1);
        prop_assert_eq!(key(&full_scan(det, config, &files)), key(&cold.scan));
        prop_assert_eq!(cold.reused, 0);

        // Mutate: rewrite some files, delete some, append new ones.
        let mut mutated = files.clone();
        for (idx, t) in &edits {
            if mutated.is_empty() {
                break;
            }
            let i = idx.index(mutated.len());
            mutated[i].text = TEMPLATES[*t as usize % TEMPLATES.len()].to_owned();
        }
        for idx in &drops {
            if mutated.is_empty() {
                break;
            }
            let i = idx.index(mutated.len());
            mutated.remove(i);
        }
        for (j, &(r, t)) in adds.iter().enumerate() {
            mutated.push(SourceFile::new(
                format!("repo{r}"),
                format!("added{j}.py"),
                TEMPLATES[t as usize % TEMPLATES.len()],
                Lang::Python,
            ));
        }

        // Warm incremental over the mutated corpus == full scan of it.
        let warm = det.violations_incremental(&mutated, config, &mut cache, 1);
        prop_assert_eq!(key(&full_scan(det, config, &mutated)), key(&warm.scan));

        // A JSON round-trip of the cache changes nothing, and serves the
        // whole mutated corpus without fresh work — at 2 threads.
        let (mut reloaded, status) = ScanCache::from_json(&cache.to_json().unwrap(), fingerprint);
        prop_assert_eq!(status, CacheLoadStatus::Warm(cache.len()));
        let again = det.violations_incremental(&mutated, config, &mut reloaded, 2);
        prop_assert_eq!(again.fresh, 0);
        prop_assert_eq!(key(&warm.scan), key(&again.scan));
    }
}

#[test]
fn cache_round_trips_through_disk() {
    let (det, config) = mined();
    let files = build_files(&[(0, 1), (1, 0), (0, 3), (2, 7)]);
    let mut cache = ScanCache::empty(det.fingerprint(config));
    let first = det.violations_incremental(&files, config, &mut cache, 1);
    let dir = std::env::temp_dir().join(format!("namer-incremental-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("scan-cache.json");
    cache.save(&path).unwrap();
    let (mut loaded, status) = ScanCache::load(&path, det.fingerprint(config));
    assert_eq!(status, CacheLoadStatus::Warm(cache.len()));
    let second = det.violations_incremental(&files, config, &mut loaded, 1);
    assert_eq!(second.fresh, 0);
    assert_eq!(second.reused, files.len());
    assert_eq!(key(&first.scan), key(&second.scan));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_cache_file_loads_cold() {
    let (det, config) = mined();
    let path = std::env::temp_dir().join("namer-no-such-cache-file.json");
    let (cache, status) = ScanCache::load(&path, det.fingerprint(config));
    assert_eq!(status, CacheLoadStatus::Cold);
    assert!(cache.is_empty());
}

#[test]
fn pattern_set_change_invalidates_cache() {
    let (det, config) = mined();
    assert!(det.pattern_count() > 1);
    let files = build_files(&[(0, 1), (1, 0), (2, 2)]);
    let mut cache = ScanCache::empty(det.fingerprint(config));
    det.violations_incremental(&files, config, &mut cache, 1);

    // Drop the last mined pattern: a different detector, so a different
    // fingerprint, so the old cache must not be accepted.
    let n = det.pattern_count() - 1;
    let truncated = Detector::from_parts(
        det.patterns.patterns[..n].to_vec(),
        det.pairs.clone(),
        det.dataset_counts_all()[..n].to_vec(),
    );
    assert_ne!(det.fingerprint(config), truncated.fingerprint(config));

    let (mut invalidated, status) =
        ScanCache::from_json(&cache.to_json().unwrap(), truncated.fingerprint(config));
    assert_eq!(status, CacheLoadStatus::FingerprintMismatch);
    assert!(invalidated.is_empty());
    let scan = truncated.violations_incremental(&files, config, &mut invalidated, 1);
    assert_eq!(scan.reused, 0);
    assert_eq!(key(&full_scan(&truncated, config, &files)), key(&scan.scan));
}

#[test]
fn corrupt_cache_degrades_to_cold_scan() {
    let (det, config) = mined();
    let fingerprint = det.fingerprint(config);
    let files = build_files(&[(0, 1), (2, 7), (1, 4)]);
    let mut cache = ScanCache::empty(fingerprint);
    det.violations_incremental(&files, config, &mut cache, 1);
    let json = cache.to_json().unwrap();
    let reference = full_scan(det, config, &files);
    for damaged in [
        "not json at all".to_owned(),
        String::new(),
        json[..json.len() / 2].to_owned(),
        json.replace("Parsed", "Parsnip"),
    ] {
        let (mut c, status) = ScanCache::from_json(&damaged, fingerprint);
        assert_eq!(status, CacheLoadStatus::Corrupt, "input: {damaged:.60}…");
        assert!(c.is_empty());
        let scan = det.violations_incremental(&files, config, &mut c, 1);
        assert_eq!(key(&reference), key(&scan.scan));
    }
}

#[test]
fn version_bump_is_rejected() {
    let (det, config) = mined();
    let fingerprint = det.fingerprint(config);
    let cache = ScanCache::empty(fingerprint);
    let mut value: serde_json::Value = serde_json::from_str(&cache.to_json().unwrap()).unwrap();
    value["version"] = serde_json::json!(CACHE_FORMAT_VERSION + 1);
    let (c, status) = ScanCache::from_json(&value.to_string(), fingerprint);
    assert_eq!(status, CacheLoadStatus::VersionMismatch);
    assert!(c.is_empty());
}

#[test]
fn empty_and_whitespace_files_scan_cleanly() {
    let (det, config) = mined();
    let files = vec![
        SourceFile::new("r", "empty.py", "", Lang::Python),
        SourceFile::new("r", "ws.py", "   \n\n  \n", Lang::Python),
        SourceFile::new("r", "nl.py", "\n", Lang::Python),
        SourceFile::new("r", "ok.py", TEMPLATES[1], Lang::Python),
    ];
    let reference = full_scan(det, config, &files);
    for threads in [1, 2, 8] {
        let mut cache = ScanCache::empty(det.fingerprint(config));
        let scan = det.violations_incremental(&files, config, &mut cache, threads);
        assert_eq!(key(&reference), key(&scan.scan), "threads={threads}");
    }
}

#[test]
fn identical_files_share_cache_entries() {
    let (det, config) = mined();
    // Five copies of the same content across different repos/paths: one
    // fresh parse serves all of them, and the scan still sees five files.
    let files = build_files(&[(0, 1), (1, 1), (2, 1), (3, 1), (0, 1)]);
    let mut cache = ScanCache::empty(det.fingerprint(config));
    let scan = det.violations_incremental(&files, config, &mut cache, 1);
    assert_eq!(cache.len(), 1, "one entry per distinct content");
    assert_eq!(scan.scan.files_scanned, 5);
    assert_eq!(key(&full_scan(det, config, &files)), key(&scan.scan));
}
