//! Differential harness for the incremental scan (DESIGN.md §8, §14):
//! under any mix of file edits, additions, and deletions — and any mix of
//! statement-level insertions, deletions, and replacements that shift the
//! spans of everything below them — the cache-backed scan must produce
//! byte-identical output to a full scan from scratch, in both
//! statement-region and file-granular mode. Damaged or mismatched caches
//! must degrade to a cold (correct) scan, never a panic or a wrong answer.

use namer::core::{
    process, CacheLoadStatus, Detector, DetectorSpec, ProcessConfig, ScanCache, ScanRequest,
    ScanResult, CACHE_FORMAT_VERSION,
};
use namer::patterns::{MiningConfig, ShardPlan};
use namer::syntax::{Lang, SourceFile};
use proptest::prelude::*;
use proptest::sample::Index;
use std::sync::OnceLock;

/// File bodies the generated corpora draw from: the dominant idiom, the
/// injected misuse, unrelated code, and the degenerate cases (empty,
/// whitespace-only, unparsable).
const TEMPLATES: &[&str] = &[
    "class T(TestCase):\n    def test_a(self):\n        self.assertEqual(value.count, 4)\n",
    "class T(TestCase):\n    def test_b(self):\n        self.assertTrue(value.count, 4)\n",
    "class T(TestCase):\n    def test_c(self):\n        self.assertEqual(other.size, 1)\n",
    "x = 1\n",
    "",
    "   \n\n",
    "def broken(:\n",
    "class T(TestCase):\n    def test_d(self):\n        self.assertTrue(value.count, 9)\n\nclass U(TestCase):\n    def test_e(self):\n        self.assertEqual(value.count, 9)\n",
];

/// Self-contained statement blocks for the statement-mutation property:
/// files are concatenations of these, so inserting / deleting / replacing
/// one block is a statement-window edit that shifts every span below it.
const BLOCKS: &[&str] = &[
    "class A(TestCase):\n    def test_p(self):\n        self.assertEqual(value.count, 3)\n",
    "class B(TestCase):\n    def test_q(self):\n        self.assertTrue(value.count, 5)\n",
    "class C(TestCase):\n    def test_r(self):\n        self.assertEqual(other.size, 2)\n",
    "x = 1\n",
    "count = other.size\n",
    "def helper(v):\n    return v\n",
];

/// Mines one detector (expensive) shared by every test and proptest case.
fn mined() -> &'static (Detector, ProcessConfig) {
    static DET: OnceLock<(Detector, ProcessConfig)> = OnceLock::new();
    DET.get_or_init(|| {
        let mut files: Vec<SourceFile> = (0..40)
            .map(|i| {
                SourceFile::new(
                    format!("r{}", i % 5),
                    format!("train{i}.py"),
                    TEMPLATES[0],
                    Lang::Python,
                )
            })
            .collect();
        files.push(SourceFile::new("r0", "bad.py", TEMPLATES[1], Lang::Python));
        let commits = vec![(
            "class T(TestCase):\n    def t(self):\n        self.assertTrue(v.count, 1)\n"
                .to_owned(),
            "class T(TestCase):\n    def t(self):\n        self.assertEqual(v.count, 1)\n"
                .to_owned(),
        )];
        let config = ProcessConfig::default();
        let corpus = process(&files, &config);
        let det = Detector::mine(
            &corpus,
            &commits,
            Lang::Python,
            &MiningConfig {
                min_path_count: 2,
                min_support: 5,
                ..MiningConfig::default()
            },
        );
        assert!(det.pattern_count() > 0, "harness needs mined patterns");
        (det, config)
    })
}

/// The cache fingerprint of this harness's detector/config pairing.
fn fp(det: &Detector, config: &ProcessConfig) -> u64 {
    det.fingerprint(config, &ShardPlan::unsharded())
}

/// A region-mode incremental scan (the §14 default) at `threads` workers.
fn incremental(
    det: &Detector,
    files: &[SourceFile],
    config: &ProcessConfig,
    cache: &mut ScanCache,
    threads: usize,
) -> ScanResult {
    det.scan(ScanRequest::incremental(files, config, cache).threads(threads))
}

/// Builds a corpus from `(repo, template)` picks, named by position.
fn build_files(specs: &[(u8, u8)]) -> Vec<SourceFile> {
    specs
        .iter()
        .enumerate()
        .map(|(i, &(r, t))| {
            SourceFile::new(
                format!("repo{r}"),
                format!("f{i}.py"),
                TEMPLATES[t as usize % TEMPLATES.len()],
                Lang::Python,
            )
        })
        .collect()
}

/// Builds one file per block list, each the concatenation of its blocks.
fn build_block_files(lists: &[Vec<u8>]) -> Vec<SourceFile> {
    lists
        .iter()
        .enumerate()
        .map(|(i, blocks)| {
            let text: String = blocks
                .iter()
                .map(|&b| BLOCKS[b as usize % BLOCKS.len()])
                .collect();
            SourceFile::new("repo0", format!("s{i}.py"), text, Lang::Python)
        })
        .collect()
}

/// Everything observable about a scan, bitwise (features via `to_bits`).
#[allow(clippy::type_complexity)]
fn key(scan: &ScanResult) -> (Vec<(String, usize, bool, Vec<u64>)>, usize, usize, usize, usize) {
    (
        scan.violations
            .iter()
            .map(|v| {
                (
                    v.to_string(),
                    v.pattern_idx,
                    v.detected_by_both,
                    v.features.iter().map(|f| f.to_bits()).collect(),
                )
            })
            .collect(),
        scan.raw_violation_count,
        scan.files_scanned,
        scan.files_with_violation,
        scan.repos_with_violation,
    )
}

/// The ground truth: process + scan everything from scratch.
fn full_scan(det: &Detector, config: &ProcessConfig, files: &[SourceFile]) -> ScanResult {
    det.scan(ScanRequest::full(&process(files, config)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The acceptance-criteria property: across ≥ 100 random corpora and
    /// random mutations of them, a cold incremental scan, a warm
    /// incremental scan of the mutated corpus, and a reloaded warm scan
    /// all match the full scan bit for bit.
    #[test]
    fn incremental_scan_matches_full_scan(
        base in proptest::collection::vec((0u8..4, 0u8..TEMPLATES.len() as u8), 1..12),
        edits in proptest::collection::vec((any::<Index>(), 0u8..TEMPLATES.len() as u8), 0..6),
        drops in proptest::collection::vec(any::<Index>(), 0..3),
        adds in proptest::collection::vec((0u8..4, 0u8..TEMPLATES.len() as u8), 0..4),
    ) {
        let (det, config) = mined();
        let fingerprint = fp(det, config);
        let files = build_files(&base);

        // Cold incremental == full.
        let mut cache = ScanCache::empty(fingerprint);
        let cold = incremental(det, &files, config, &mut cache, 1);
        prop_assert_eq!(key(&full_scan(det, config, &files)), key(&cold));
        prop_assert_eq!(cold.cache.unwrap().reused, 0);

        // Mutate: rewrite some files, delete some, append new ones.
        let mut mutated = files.clone();
        for (idx, t) in &edits {
            if mutated.is_empty() {
                break;
            }
            let i = idx.index(mutated.len());
            mutated[i].text = TEMPLATES[*t as usize % TEMPLATES.len()].to_owned();
        }
        for idx in &drops {
            if mutated.is_empty() {
                break;
            }
            let i = idx.index(mutated.len());
            mutated.remove(i);
        }
        for (j, &(r, t)) in adds.iter().enumerate() {
            mutated.push(SourceFile::new(
                format!("repo{r}"),
                format!("added{j}.py"),
                TEMPLATES[t as usize % TEMPLATES.len()],
                Lang::Python,
            ));
        }

        // Warm incremental over the mutated corpus == full scan of it.
        let warm = incremental(det, &mutated, config, &mut cache, 1);
        prop_assert_eq!(key(&full_scan(det, config, &mutated)), key(&warm));

        // A serialisation round-trip of the cache changes nothing, and
        // serves the whole mutated corpus without fresh work — at 2
        // threads.
        let (mut reloaded, status) = ScanCache::from_json(&cache.to_json().unwrap(), fingerprint);
        prop_assert_eq!(status, CacheLoadStatus::Warm(cache.len()));
        let again = incremental(det, &mutated, config, &mut reloaded, 2);
        prop_assert_eq!(again.cache.unwrap().fresh, 0);
        prop_assert_eq!(key(&warm), key(&again));
    }

    /// The §14 property: a statement-windowed (region-spliced) rescan of a
    /// corpus mutated by random statement insertions, deletions, and
    /// replacements — span-shifting edits included — matches the full cold
    /// scan bit for bit, at 1 and 2 threads, and agrees with the
    /// file-granular dirty-window setting.
    #[test]
    fn statement_windowed_rescan_matches_full_scan(
        base in proptest::collection::vec(
            proptest::collection::vec(0u8..BLOCKS.len() as u8, 1..6), 1..8),
        ops in proptest::collection::vec(
            (any::<Index>(), any::<Index>(), 0u8..3, 0u8..BLOCKS.len() as u8), 1..8),
    ) {
        let (det, config) = mined();
        let files = build_block_files(&base);

        // Warm a region cache on the pristine corpus.
        let mut cache = ScanCache::empty(fp(det, config));
        incremental(det, &files, config, &mut cache, 1);

        // Statement-level mutations: insert a block (shifting every span
        // below it), delete one, or replace one in place.
        let mut lists = base.clone();
        for (fi, pi, op, b) in &ops {
            let list = &mut lists[fi.index(lists.len())];
            match op {
                0 => {
                    let p = pi.index(list.len() + 1);
                    list.insert(p, *b);
                }
                1 => {
                    if list.len() > 1 {
                        let p = pi.index(list.len());
                        list.remove(p);
                    }
                }
                _ => {
                    let p = pi.index(list.len());
                    list[p] = *b;
                }
            }
        }
        let mutated = build_block_files(&lists);
        let reference = full_scan(det, config, &mutated);

        // Region-spliced warm rescan ≡ full cold scan, thread-invariant.
        for threads in [1usize, 2] {
            let mut warm = cache.clone();
            let scan = incremental(det, &mutated, config, &mut warm, threads);
            prop_assert_eq!(key(&reference), key(&scan), "threads={}", threads);
        }
        // And ≡ the file-granular dirty-window setting of the grid.
        let mut warm = cache.clone();
        let granular = det.scan(
            ScanRequest::incremental(&mutated, config, &mut warm).file_granular(),
        );
        prop_assert_eq!(key(&reference), key(&granular));
    }
}

#[test]
fn cache_round_trips_through_disk() {
    let (det, config) = mined();
    let files = build_files(&[(0, 1), (1, 0), (0, 3), (2, 7)]);
    let mut cache = ScanCache::empty(fp(det, config));
    let first = incremental(det, &files, config, &mut cache, 1);
    let dir = std::env::temp_dir().join(format!("namer-incremental-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("scan-cache.json");
    cache.save(&path).unwrap();
    let (mut loaded, status) = ScanCache::load(&path, fp(det, config));
    assert_eq!(status, CacheLoadStatus::Warm(cache.len()));
    let second = incremental(det, &files, config, &mut loaded, 1);
    let stats = second.cache.unwrap();
    assert_eq!(stats.fresh, 0);
    assert_eq!(stats.reused, files.len());
    assert_eq!(key(&first), key(&second));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_cache_file_loads_cold() {
    let (det, config) = mined();
    let path = std::env::temp_dir().join("namer-no-such-cache-file.json");
    let (cache, status) = ScanCache::load(&path, fp(det, config));
    assert_eq!(status, CacheLoadStatus::Cold);
    assert!(cache.is_empty());
}

#[test]
fn pattern_set_change_invalidates_cache() {
    let (det, config) = mined();
    assert!(det.pattern_count() > 1);
    let files = build_files(&[(0, 1), (1, 0), (2, 2)]);
    let mut cache = ScanCache::empty(fp(det, config));
    incremental(det, &files, config, &mut cache, 1);

    // Drop the last mined pattern: a different detector, so a different
    // fingerprint, so the old cache must not be accepted.
    let n = det.pattern_count() - 1;
    let truncated = DetectorSpec::new(
        det.patterns.patterns[..n].to_vec(),
        det.pairs.clone(),
        det.dataset_counts_all()[..n].to_vec(),
    )
    .build();
    assert_ne!(fp(det, config), fp(&truncated, config));

    let (mut invalidated, status) =
        ScanCache::from_json(&cache.to_json().unwrap(), fp(&truncated, config));
    assert_eq!(status, CacheLoadStatus::FingerprintMismatch);
    assert!(invalidated.is_empty());
    let scan = incremental(&truncated, &files, config, &mut invalidated, 1);
    assert_eq!(scan.cache.unwrap().reused, 0);
    assert_eq!(key(&full_scan(&truncated, config, &files)), key(&scan));
}

#[test]
fn corrupt_cache_degrades_to_cold_scan() {
    let (det, config) = mined();
    let fingerprint = fp(det, config);
    let files = build_files(&[(0, 1), (2, 7), (1, 4)]);
    let mut cache = ScanCache::empty(fingerprint);
    incremental(det, &files, config, &mut cache, 1);
    let json = cache.to_json().unwrap();
    let reference = full_scan(det, config, &files);
    for damaged in [
        "not json at all".to_owned(),
        String::new(),
        json[..json.len() / 2].to_owned(),
        json.replace("Parsed", "Parsnip"),
    ] {
        let (mut c, status) = ScanCache::from_json(&damaged, fingerprint);
        assert_eq!(status, CacheLoadStatus::Corrupt, "input: {damaged:.60}…");
        assert!(c.is_empty());
        let scan = incremental(det, &files, config, &mut c, 1);
        assert_eq!(key(&reference), key(&scan));
    }
}

#[test]
fn version_bump_is_rejected() {
    let (det, config) = mined();
    let fingerprint = fp(det, config);
    let cache = ScanCache::empty(fingerprint);
    let mut value: serde_json::Value = serde_json::from_str(&cache.to_json().unwrap()).unwrap();
    value["version"] = serde_json::json!(CACHE_FORMAT_VERSION + 1);
    let (c, status) = ScanCache::from_json(&value.to_string(), fingerprint);
    assert_eq!(status, CacheLoadStatus::VersionMismatch);
    assert!(c.is_empty());
}

#[test]
fn empty_and_whitespace_files_scan_cleanly() {
    let (det, config) = mined();
    let files = vec![
        SourceFile::new("r", "empty.py", "", Lang::Python),
        SourceFile::new("r", "ws.py", "   \n\n  \n", Lang::Python),
        SourceFile::new("r", "nl.py", "\n", Lang::Python),
        SourceFile::new("r", "ok.py", TEMPLATES[1], Lang::Python),
    ];
    let reference = full_scan(det, config, &files);
    for threads in [1, 2, 8] {
        let mut cache = ScanCache::empty(fp(det, config));
        let scan = incremental(det, &files, config, &mut cache, threads);
        assert_eq!(key(&reference), key(&scan), "threads={threads}");
    }
}

#[test]
fn identical_files_share_cache_entries() {
    let (det, config) = mined();
    // Five copies of the same content across different repos/paths: one
    // fresh parse serves all of them, and the scan still sees five files.
    let files = build_files(&[(0, 1), (1, 1), (2, 1), (3, 1), (0, 1)]);
    let mut cache = ScanCache::empty(fp(det, config));
    let scan = incremental(det, &files, config, &mut cache, 1);
    assert_eq!(cache.len(), 1, "one entry per distinct content");
    assert_eq!(scan.files_scanned, 5);
    assert_eq!(key(&full_scan(det, config, &files)), key(&scan));
}
