//! Integration: the pipeline observability layer (DESIGN.md §10).
//!
//! The contract under test: counter totals in [`DetectOutcome::metrics`] are
//! a pure function of the model and the input files — worker threads,
//! pattern shards, and cache warmth are scheduling knobs that must never
//! change a total. Timings are explicitly exempt (they are wall clocks), so
//! these tests only sanity-check them for presence.

use namer::core::{Namer, NamerBuilder, NamerConfig, SavedModel};
use namer::corpus::{CorpusConfig, Generator};
use namer::observe::{Counter, MetricsSnapshot, Phase, PipelineMetrics, SCHEMA_VERSION};
use namer::patterns::{MiningConfig, ShardPlan};
use namer::syntax::{Lang, SourceFile};
use std::collections::BTreeMap;
use std::sync::Arc;

fn config() -> NamerConfig {
    NamerConfig {
        mining: MiningConfig {
            min_path_count: 4,
            min_support: 15,
            ..MiningConfig::default()
        },
        labeled_per_class: 10,
        cv_repeats: 3,
        ..NamerConfig::default()
    }
}

/// Trains once and returns the corpus plus the model snapshot the grid
/// points rebuild their sessions from.
fn trained_model(seed: u64) -> (Vec<SourceFile>, String) {
    let corpus = Generator::new(CorpusConfig::small(Lang::Python)).generate(seed);
    let oracle = corpus.oracle();
    let commits: Vec<(String, String)> = corpus
        .commits
        .iter()
        .map(|c| (c.before.clone(), c.after.clone()))
        .collect();
    let namer = Namer::train(
        &corpus.files,
        &commits,
        |v| {
            oracle
                .label(&v.repo, &v.path, v.line, v.original.as_str(), v.suggested.as_str())
                .is_some()
        },
        &config(),
    );
    let json = SavedModel::from_namer(&namer).to_json().expect("model serialises");
    (corpus.files, json)
}

fn builder(json: &str, threads: usize, shards: usize) -> NamerBuilder {
    NamerBuilder::new()
        .model(SavedModel::from_json(json).expect("model parses"))
        .config(config())
        .threads(threads)
        // min_patterns: 0 so small mined sets still shard — the grid must
        // exercise real partitions, not the size fallback.
        .shard_plan(ShardPlan {
            shards,
            min_patterns: 0,
        })
}

/// The scan-derived counters every warmth/threading mode must agree on.
const SCAN_COUNTERS: [Counter; 7] = [
    Counter::FilesScanned,
    Counter::StatementsScanned,
    Counter::PatternMatches,
    Counter::PatternSatisfactions,
    Counter::ViolationsRaw,
    Counter::ViolationsDeduped,
    Counter::ReportsEmitted,
];

fn scan_totals(snap: &MetricsSnapshot) -> BTreeMap<&'static str, u64> {
    SCAN_COUNTERS
        .iter()
        .map(|&c| (c.name(), snap.counter(c)))
        .collect()
}

#[test]
fn counter_totals_are_invariant_across_the_thread_shard_grid() {
    let (files, json) = trained_model(2021);
    let run = |threads: usize, shards: usize| {
        let mut session = builder(&json, threads, shards).build().expect("builds");
        session.run(&files).expect("cacheless run")
    };

    let baseline = run(1, 1);
    let m = &baseline.metrics;
    // The totals cross-check against the outcome they describe.
    assert_eq!(m.counter(Counter::FilesProcessed), files.len() as u64);
    assert_eq!(m.counter(Counter::ParseFailures), 0);
    assert_eq!(m.counter(Counter::FilesScanned), files.len() as u64);
    assert!(m.counter(Counter::StatementsProcessed) > 0);
    // Assembly re-derives statement coverage from the per-file states, so
    // it must agree with what processing counted.
    assert_eq!(
        m.counter(Counter::StatementsScanned),
        m.counter(Counter::StatementsProcessed)
    );
    assert!(m.counter(Counter::PatternMatches) >= m.counter(Counter::PatternSatisfactions));
    assert_eq!(
        m.counter(Counter::ViolationsRaw),
        baseline.scan.raw_violation_count as u64
    );
    assert_eq!(
        m.counter(Counter::ViolationsDeduped),
        baseline.scan.violations.len() as u64
    );
    assert_eq!(
        m.counter(Counter::ReportsEmitted),
        baseline.reports.len() as u64
    );
    // Scan-only sessions never mine or touch a cache.
    assert_eq!(m.counter(Counter::PatternsMined), 0);
    assert_eq!(m.counter(Counter::CacheHits), 0);

    for threads in [1usize, 2, 8] {
        for shards in [1usize, 2, 4] {
            let outcome = run(threads, shards);
            assert_eq!(
                baseline.metrics.counters, outcome.metrics.counters,
                "counter totals diverged at threads={threads} shards={shards}"
            );
        }
    }
}

#[test]
fn cached_runs_keep_scan_totals_and_account_hits() {
    let (files, json) = trained_model(2022);
    let n = files.len() as u64;
    let base = std::env::temp_dir().join(format!("namer-metrics-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    let mut reference: Option<BTreeMap<&'static str, u64>> = None;
    for threads in [1usize, 2] {
        for shards in [1usize, 4] {
            let dir = base.join(format!("t{threads}-s{shards}"));
            let build = || {
                builder(&json, threads, shards)
                    .cache_dir(&dir)
                    .build()
                    .expect("builds")
            };

            let cold = build().run(&files).expect("cold run");
            assert_eq!(cold.metrics.counter(Counter::CacheHits), 0);
            assert_eq!(cold.metrics.counter(Counter::CacheMisses), n);
            assert_eq!(cold.metrics.counter(Counter::CacheDegradedCold), 0);

            let warm = build().run(&files).expect("warm run");
            assert_eq!(warm.metrics.counter(Counter::CacheHits), n);
            assert_eq!(warm.metrics.counter(Counter::CacheMisses), 0);
            // Warm runs process nothing fresh...
            assert_eq!(warm.metrics.counter(Counter::FilesProcessed), 0);
            // ...yet assembly still derives full-corpus scan totals, equal
            // to the cold run's and to every other grid point's.
            assert_eq!(scan_totals(&cold.metrics), scan_totals(&warm.metrics));
            let totals = scan_totals(&warm.metrics);
            assert!(totals[Counter::StatementsScanned.name()] > 0);
            match &reference {
                None => reference = Some(totals),
                Some(r) => assert_eq!(
                    r, &totals,
                    "cached totals diverged at threads={threads} shards={shards}"
                ),
            }
        }
    }
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn snapshot_serde_round_trips_with_the_full_key_set() {
    let (files, json) = trained_model(2023);
    let mut session = builder(&json, 2, 2).build().expect("builds");
    let outcome = session.run(&files).expect("cacheless run");
    let snap = &outcome.metrics;

    assert_eq!(snap.schema_version, SCHEMA_VERSION);
    for c in Counter::ALL {
        assert!(snap.counters.contains_key(c.name()), "missing {}", c.name());
    }
    for p in Phase::ALL {
        assert!(snap.phases.contains_key(p.name()), "missing {}", p.name());
    }
    // One Detect span wraps the run; the phases inside it were timed.
    assert_eq!(snap.phase(Phase::Detect).calls, 1);
    assert!(snap.phase(Phase::Process).wall_nanos > 0);
    assert!(snap.phase(Phase::Scan).wall_nanos > 0);
    assert!(snap.phase(Phase::Assemble).wall_nanos > 0);
    assert!(snap.phase(Phase::Classify).calls >= 1);

    let back = MetricsSnapshot::from_json(&snap.to_json()).expect("round trip parses");
    assert_eq!(snap, &back);
    // The human rendering mentions whatever was active.
    let text = snap.render_human();
    assert!(text.contains("detect"));
    assert!(text.contains("files_scanned"));
}

#[test]
fn builder_sink_receives_the_same_totals_as_the_outcome() {
    let (files, json) = trained_model(2024);
    let sink = Arc::new(PipelineMetrics::new());
    let mut session = builder(&json, 2, 2)
        .metrics(sink.clone())
        .build()
        .expect("builds");
    let outcome = session.run(&files).expect("cacheless run");
    let streamed = sink.snapshot();
    assert_eq!(streamed.counters, outcome.metrics.counters);
    assert_eq!(
        streamed.phase(Phase::Detect).calls,
        outcome.metrics.phase(Phase::Detect).calls
    );
}
