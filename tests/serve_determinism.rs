//! Concurrency-determinism suite for `namer serve`: the determinism
//! grid of `tests/determinism.rs` (byte-identical output at any
//! file-threads × pattern-shards setting) extended through the daemon.
//!
//! Three layers:
//! * the same request transcript replayed at every grid setting yields
//!   identical findings/summary/diagnostics/counters (and identical
//!   full response bytes along the thread axis, where even the
//!   scrubbed shard vector's length is fixed);
//! * daemon findings equal a direct (CLI-path) `DetectSession` run at
//!   the same setting;
//! * N parallel TCP clients each receive responses byte-identical to a
//!   serial single-connection transcript of the same requests.

use namer::core::{Namer, NamerBuilder, NamerConfig, SavedModel, Violation};
use namer::patterns::{MiningConfig, ShardPlan};
use namer::serve::{serve_listener, serve_transcript, ModelHost, ServeConfig};
use namer::syntax::{Lang, SourceFile};
use serde_json::{json, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

const IDIOM: &str = "class T(TestCase):\n    def t(self):\n        self.assertEqual(v.count, 3)\n";
const MISUSE: &str = "class T(TestCase):\n    def t(self):\n        self.assertTrue(v.count, 3)\n";

fn detect_config(threads: usize, shards: usize) -> NamerConfig {
    NamerConfig {
        mining: MiningConfig {
            min_path_count: 2,
            min_support: 5,
            ..MiningConfig::default()
        },
        labeled_per_class: 3,
        cv_repeats: 2,
        threads,
        // min_patterns: 0 so the small mined set still shards — the grid
        // must exercise real partitions, not the size fallback.
        shard_plan: ShardPlan {
            shards,
            min_patterns: 0,
        },
        ..NamerConfig::default()
    }
}

fn model_json() -> &'static String {
    static JSON: OnceLock<String> = OnceLock::new();
    JSON.get_or_init(|| {
        let mut files: Vec<SourceFile> = (0..40)
            .map(|i| {
                SourceFile::new(
                    format!("r{}", i % 3),
                    format!("f{i}.py"),
                    format!("{IDIOM}x{i} = {i}\n"),
                    Lang::Python,
                )
            })
            .collect();
        files.push(SourceFile::new("r0", "bug.py", MISUSE, Lang::Python));
        let commits = vec![(
            "class T(TestCase):\n    def t(self):\n        self.assertTrue(v.count, 1)\n"
                .to_owned(),
            "class T(TestCase):\n    def t(self):\n        self.assertEqual(v.count, 1)\n"
                .to_owned(),
        )];
        let namer = Namer::train(
            &files,
            &commits,
            |v: &Violation| v.original.as_str() == "True",
            &detect_config(1, 1),
        );
        SavedModel::from_namer(&namer).to_json().expect("model serializes")
    })
}

fn host() -> ModelHost {
    ModelHost::Single {
        name: "m".to_owned(),
        model: Arc::new(SavedModel::from_json(model_json()).expect("model parses")),
    }
}

fn config(threads: usize, shards: usize) -> ServeConfig {
    let mut config = ServeConfig::new(detect_config(threads, shards));
    config.scrub_timings = true;
    config
}

/// The two analyze batches replayed everywhere. Distinct trailing
/// statements keep content digests distinct.
fn batch(tag: u32) -> Vec<(String, String)> {
    let mut files = vec![
        ("bug.py".to_owned(), MISUSE.to_owned()),
        ("ok.py".to_owned(), IDIOM.to_owned()),
    ];
    for i in 0..6 {
        files.push((format!("b{tag}_{i}.py"), format!("{IDIOM}y{tag}_{i} = {i}\n")));
    }
    files
}

fn init_line(id: u64) -> String {
    format!("{{\"jsonrpc\":\"2.0\",\"id\":{id},\"method\":\"initialize\",\"params\":{{\"protocol\":1}}}}")
}

fn analyze_line(id: u64, tag: u32) -> String {
    let files: Vec<Value> = batch(tag)
        .into_iter()
        .map(|(path, content)| json!({"repo": "client", "path": path, "content": content}))
        .collect();
    serde_json::to_string(&json!({
        "jsonrpc": "2.0",
        "id": id,
        "method": "file.analyze",
        "params": {"files": files},
    }))
    .expect("request serializes")
}

/// The canonical transcript: handshake, explicit model pre-warm, then
/// two analyze batches. Pre-warming pins which request pays (and
/// reports) the session build, so replays agree on every byte.
fn transcript() -> String {
    [
        init_line(1),
        "{\"jsonrpc\":\"2.0\",\"id\":100,\"method\":\"model.load\",\"params\":{\"model\":\"m\"}}"
            .to_owned(),
        analyze_line(2, 0),
        analyze_line(3, 1),
    ]
    .join("\n")
}

/// Findings of a response line as a comparable serialized string.
fn findings_of(line: &str) -> String {
    let v: Value = serde_json::from_str(line).expect("response parses");
    assert!(
        v.get("error").is_none(),
        "expected a result response, got {line}"
    );
    serde_json::to_string(&v["result"]["findings"]).unwrap()
}

fn result_field(line: &str, field: &str) -> Value {
    let v: Value = serde_json::from_str(line).expect("response parses");
    v["result"][field].clone()
}

#[test]
fn serve_grid_findings_identical_at_every_threads_shards_setting() {
    let baseline = serve_transcript(config(1, 1), host(), &transcript());
    let base_lines: Vec<String> = baseline.lines().map(str::to_owned).collect();
    assert_eq!(base_lines.len(), 4);
    for threads in [1, 2, 8] {
        for shards in [1, 2, 5] {
            let out = serve_transcript(config(threads, shards), host(), &transcript());
            let lines: Vec<&str> = out.lines().collect();
            assert_eq!(lines.len(), 4, "t={threads} s={shards}");
            for idx in [2, 3] {
                assert_eq!(
                    findings_of(lines[idx]),
                    findings_of(&base_lines[idx]),
                    "findings diverged at t={threads} s={shards} response {idx}"
                );
                for field in ["summary", "diagnostics"] {
                    assert_eq!(
                        result_field(lines[idx], field),
                        result_field(&base_lines[idx], field),
                        "{field} diverged at t={threads} s={shards}"
                    );
                }
                // Counter totals obey the deterministic-sum invariant
                // (DESIGN.md §10) through the daemon too.
                assert_eq!(
                    result_field(lines[idx], "metrics")["counters"],
                    result_field(&base_lines[idx], "metrics")["counters"],
                    "counters diverged at t={threads} s={shards}"
                );
            }
        }
    }
}

#[test]
fn serve_thread_axis_is_byte_identical() {
    // At a fixed shard plan even the full scrubbed responses — shard
    // vector length included — cannot depend on the file-thread count.
    for shards in [1, 2, 5] {
        let baseline = serve_transcript(config(1, shards), host(), &transcript());
        for threads in [2, 8] {
            let out = serve_transcript(config(threads, shards), host(), &transcript());
            assert_eq!(out, baseline, "bytes diverged at t={threads} s={shards}");
        }
    }
}

#[test]
fn serve_findings_match_direct_session_at_every_setting() {
    // The daemon's detection path is the CLI's detection path: compare
    // wire findings against a direct DetectSession run per grid point.
    for (threads, shards) in [(1, 1), (2, 2), (8, 5)] {
        let files: Vec<SourceFile> = batch(0)
            .into_iter()
            .map(|(path, content)| SourceFile::new("client", path, content, Lang::Python))
            .collect();
        let mut session = NamerBuilder::new()
            .model(SavedModel::from_json(model_json()).unwrap())
            .config(detect_config(threads, shards))
            .build()
            .expect("session builds");
        let outcome = session.run(&files).expect("cacheless run cannot fail");
        assert!(!outcome.reports.is_empty());
        let direct: Vec<(String, String, u32, String, String, u64)> = outcome
            .reports
            .iter()
            .map(|r| {
                (
                    r.violation.repo.clone(),
                    r.violation.path.clone(),
                    r.violation.line,
                    r.violation.original.as_str().to_owned(),
                    r.violation.suggested.as_str().to_owned(),
                    r.decision.to_bits(),
                )
            })
            .collect();

        let input = [init_line(1), analyze_line(2, 0)].join("\n");
        let out = serve_transcript(config(threads, shards), host(), &input);
        let line = out.lines().nth(1).expect("analyze response");
        let v: Value = serde_json::from_str(line).unwrap();
        let served: Vec<(String, String, u32, String, String, u64)> = v["result"]["findings"]
            .as_array()
            .expect("findings array")
            .iter()
            .map(|f| {
                (
                    f["repo"].as_str().unwrap().to_owned(),
                    f["path"].as_str().unwrap().to_owned(),
                    f["line"].as_u64().unwrap() as u32,
                    f["original"].as_str().unwrap().to_owned(),
                    f["suggested"].as_str().unwrap().to_owned(),
                    f["decision"].as_f64().unwrap().to_bits(),
                )
            })
            .collect();
        assert_eq!(served, direct, "daemon != direct session at t={threads} s={shards}");
    }
}

// ----- parallel TCP clients ---------------------------------------------------

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client { stream, reader }
    }

    fn send(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).unwrap();
        self.stream.write_all(b"\n").unwrap();
    }

    fn recv(&mut self) -> String {
        let mut buf = String::new();
        self.reader.read_line(&mut buf).expect("response line");
        assert!(buf.ends_with('\n'), "truncated response: {buf:?}");
        buf.trim_end_matches('\n').to_owned()
    }
}

#[test]
fn serve_parallel_tcp_clients_match_serial_transcript() {
    // Serial single-connection expectation for the exact request
    // sequence each TCP client will send (after a model pre-warm).
    let expected: Vec<String> = serve_transcript(config(2, 2), host(), &transcript())
        .lines()
        .map(str::to_owned)
        .collect();
    assert_eq!(expected.len(), 4);

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let mut cfg = config(2, 2);
    cfg.queue_capacity = 32;
    let server = std::thread::spawn(move || serve_listener(cfg, host(), listener));

    // Pre-warm the session so no client's first analyze pays (and
    // reports) the model load — same shape as the serial transcript.
    {
        let mut warm = Client::connect(addr);
        warm.send(&init_line(1));
        assert_eq!(warm.recv(), expected[0]);
        warm.send("{\"jsonrpc\":\"2.0\",\"id\":100,\"method\":\"model.load\",\"params\":{\"model\":\"m\"}}");
        assert_eq!(warm.recv(), expected[1]);
    }

    let clients: Vec<_> = (0..4)
        .map(|_| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                client.send(&init_line(1));
                assert_eq!(client.recv(), expected[0]);
                // Pipeline both batches, then read both responses: per
                // connection, responses return in request order.
                client.send(&analyze_line(2, 0));
                client.send(&analyze_line(3, 1));
                assert_eq!(client.recv(), expected[2], "parallel client diverged");
                assert_eq!(client.recv(), expected[3], "parallel client diverged");
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }

    let mut closer = Client::connect(addr);
    closer.send(&init_line(1));
    assert_eq!(closer.recv(), expected[0]);
    closer.send("{\"jsonrpc\":\"2.0\",\"id\":9,\"method\":\"shutdown\"}");
    assert_eq!(
        closer.recv(),
        "{\"jsonrpc\":\"2.0\",\"id\":9,\"result\":{\"ok\":true}}"
    );
    server.join().expect("server thread").expect("server exits cleanly");
}
