//! Fault matrix for `namer serve` (DESIGN.md §13): the daemon under
//! hostile conditions degrades cold, never wrong.
//!
//! * **Kill-point matrix** — the daemon's deferred cache persistence
//!   runs *after* each response line, so "crash between response write
//!   and cache save" is an ordinary kill point here. A clean run sizes
//!   the matrix by counting VFS operations; killing at every index
//!   must leave findings correct, the on-disk cache holding complete
//!   old or complete new bytes, and a restarted daemon healthy.
//! * **Transient-I/O storms** — seeded transient faults plus a retry
//!   policy must not change findings.
//! * **Flush storms** — a cache directory that permanently refuses
//!   writes costs warmth only; responses match a healthy daemon's.
//! * **Connection drop mid-request** — a TCP client that vanishes
//!   without reading its response must not disturb survivors or
//!   shutdown.
//! * **Overload** — a flooded bounded queue answers `server_busy` for
//!   the overflow and exactly one response per request, never silent
//!   drops or unbounded buffering.

use namer::core::{
    Fault, FaultSchedule, FaultVfs, Namer, NamerConfig, RealFs, RetryPolicy, SavedModel, Vfs,
    Violation,
};
use namer::patterns::MiningConfig;
use namer::serve::{serve_listener, serve_transcript, ModelHost, ServeConfig};
use namer::syntax::{Lang, SourceFile};
use serde_json::{json, Value};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

const IDIOM: &str = "class T(TestCase):\n    def t(self):\n        self.assertEqual(v.count, 3)\n";
const MISUSE: &str = "class T(TestCase):\n    def t(self):\n        self.assertTrue(v.count, 3)\n";

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "namer-serve-faults-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn mini_config() -> NamerConfig {
    NamerConfig {
        mining: MiningConfig {
            min_path_count: 2,
            min_support: 5,
            ..MiningConfig::default()
        },
        labeled_per_class: 3,
        cv_repeats: 2,
        threads: 1,
        ..NamerConfig::default()
    }
}

fn model_json() -> &'static String {
    static JSON: OnceLock<String> = OnceLock::new();
    JSON.get_or_init(|| {
        let mut files: Vec<SourceFile> = (0..40)
            .map(|i| {
                SourceFile::new(
                    format!("r{}", i % 3),
                    format!("f{i}.py"),
                    format!("{IDIOM}x{i} = {i}\n"),
                    Lang::Python,
                )
            })
            .collect();
        files.push(SourceFile::new("r0", "bug.py", MISUSE, Lang::Python));
        let commits = vec![(
            "class T(TestCase):\n    def t(self):\n        self.assertTrue(v.count, 1)\n"
                .to_owned(),
            "class T(TestCase):\n    def t(self):\n        self.assertEqual(v.count, 1)\n"
                .to_owned(),
        )];
        let namer = Namer::train(
            &files,
            &commits,
            |v: &Violation| v.original.as_str() == "True",
            &mini_config(),
        );
        SavedModel::from_namer(&namer).to_json().expect("model serializes")
    })
}

fn host() -> ModelHost {
    ModelHost::Single {
        name: "m".to_owned(),
        model: Arc::new(SavedModel::from_json(model_json()).expect("model parses")),
    }
}

fn config(vfs: Arc<dyn Vfs>, cache_root: Option<&Path>, retry: RetryPolicy) -> ServeConfig {
    let mut config = ServeConfig::new(mini_config());
    config.scrub_timings = true;
    config.vfs = vfs;
    config.cache_root = cache_root.map(Path::to_path_buf);
    config.retry = retry;
    config
}

fn clean_config(cache_root: Option<&Path>) -> ServeConfig {
    config(Arc::new(RealFs), cache_root, RetryPolicy::default())
}

/// `extra` grows the batch (and therefore the saved cache bytes): the
/// old-vs-new pair of the kill matrix.
fn batch(extra: usize) -> Vec<(String, String)> {
    let mut files = vec![
        ("bug.py".to_owned(), MISUSE.to_owned()),
        ("ok.py".to_owned(), IDIOM.to_owned()),
    ];
    for i in 0..6 + extra {
        files.push((format!("f{i}.py"), format!("{IDIOM}y{i} = {i}\n")));
    }
    files
}

fn init_line(id: u64) -> String {
    format!("{{\"jsonrpc\":\"2.0\",\"id\":{id},\"method\":\"initialize\",\"params\":{{\"protocol\":1}}}}")
}

fn analyze_line(id: u64, files: &[(String, String)]) -> String {
    let files: Vec<Value> = files
        .iter()
        .map(|(path, content)| json!({"repo": "client", "path": path, "content": content}))
        .collect();
    serde_json::to_string(&json!({
        "jsonrpc": "2.0",
        "id": id,
        "method": "file.analyze",
        "params": {"files": files},
    }))
    .expect("request serializes")
}

fn transcript(extra: usize) -> String {
    [
        init_line(1),
        "{\"jsonrpc\":\"2.0\",\"id\":100,\"method\":\"model.load\",\"params\":{\"model\":\"m\"}}"
            .to_owned(),
        analyze_line(2, &batch(extra)),
    ]
    .join("\n")
}

/// Asserts a response line is a result (not an error) and returns its
/// findings as a comparable string.
fn findings_of(line: &str) -> String {
    let v: Value = serde_json::from_str(line).expect("response parses");
    assert!(
        v.get("error").is_none(),
        "expected a result response, got {line}"
    );
    serde_json::to_string(&v["result"]["findings"]).unwrap()
}

fn assert_all_results(out: &str, expect_lines: usize, ctx: &str) {
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), expect_lines, "{ctx}: wrong response count");
    for line in lines {
        let v: Value = serde_json::from_str(line).expect("response parses");
        assert!(v.get("error").is_none(), "{ctx}: unexpected error {line}");
    }
}

// ----- kill-point matrix ------------------------------------------------------

#[test]
fn serve_kill_matrix_leaves_old_or_new_cache_and_correct_findings() {
    let dir = scratch("kill");
    let cache_file = dir.join("m").join("scan-cache.json");

    // Seed the "old" cache with a small batch, then capture the "new"
    // cache (and expected responses) from a clean superset run.
    serve_transcript(clean_config(Some(&dir)), host(), &transcript(0));
    let old_bytes = std::fs::read(&cache_file).expect("seeded cache");
    let expected = serve_transcript(clean_config(Some(&dir)), host(), &transcript(4));
    let new_bytes = std::fs::read(&cache_file).expect("updated cache");
    assert_ne!(old_bytes, new_bytes);
    let expected_findings = findings_of(expected.lines().nth(2).unwrap());

    // Size the matrix: a fault-free FaultVfs counts every VFS operation
    // the daemon performs across the whole transcript — the cache load
    // at session build and the deferred post-response saves included.
    std::fs::write(&cache_file, &old_bytes).unwrap();
    let probe = Arc::new(FaultVfs::real(FaultSchedule::new()));
    serve_transcript(config(probe.clone(), Some(&dir), RetryPolicy::none()), host(), &transcript(4));
    let ops = probe.ops();
    assert!(ops >= 2, "expected at least a cache read and a cache write");

    for k in 0..ops {
        std::fs::write(&cache_file, &old_bytes).unwrap();
        let vfs = Arc::new(FaultVfs::real(FaultSchedule::kill_at(k, Some(usize::MAX))));
        let out = serve_transcript(
            config(vfs, Some(&dir), RetryPolicy::none()),
            host(),
            &transcript(4),
        );
        // Every request is answered, none wrongly: a dead cache only
        // costs warmth. Kill points after the analyze response land in
        // the deferred save — the crash-between-response-and-save
        // ordering — and must not have blocked the response either.
        assert_all_results(&out, 3, &format!("kill at op {k}"));
        assert_eq!(
            findings_of(out.lines().nth(2).unwrap()),
            expected_findings,
            "kill at op {k} changed findings"
        );
        // The disk invariant: complete old cache or complete new cache.
        let bytes = std::fs::read(&cache_file).unwrap();
        assert!(
            bytes == old_bytes || bytes == new_bytes,
            "kill at op {k} left a truncated cache on disk"
        );
        // The restart: a fresh daemon over the surviving cache is warm
        // or cold but always right.
        let restarted = serve_transcript(clean_config(Some(&dir)), host(), &transcript(4));
        assert_eq!(
            findings_of(restarted.lines().nth(2).unwrap()),
            expected_findings,
            "restart after kill at op {k}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

// ----- transient and permanent I/O storms -------------------------------------

#[test]
fn serve_transient_io_storm_never_changes_findings() {
    let dir = scratch("transient");
    let cache_file = dir.join("m").join("scan-cache.json");
    serve_transcript(clean_config(Some(&dir)), host(), &transcript(0));
    let old_bytes = std::fs::read(&cache_file).expect("seeded cache");
    let expected = serve_transcript(clean_config(Some(&dir)), host(), &transcript(4));
    let new_bytes = std::fs::read(&cache_file).unwrap();
    let expected_findings = findings_of(expected.lines().nth(2).unwrap());

    // Seed 1 deterministically faults operation 0 and never produces
    // long fault runs, so 8 immediate attempts always recover.
    std::fs::write(&cache_file, &old_bytes).unwrap();
    let vfs = Arc::new(FaultVfs::real(FaultSchedule::seeded_transient(1, 400, 30)));
    let out = serve_transcript(
        config(vfs, Some(&dir), RetryPolicy::immediate(8)),
        host(),
        &transcript(4),
    );
    assert_all_results(&out, 3, "transient storm");
    assert_eq!(findings_of(out.lines().nth(2).unwrap()), expected_findings);

    // Whatever the storm did to persistence, the disk holds a complete
    // cache and a clean restart is healthy.
    let bytes = std::fs::read(&cache_file).unwrap();
    assert!(bytes == old_bytes || bytes == new_bytes, "truncated cache after storm");
    let restarted = serve_transcript(clean_config(Some(&dir)), host(), &transcript(4));
    assert_eq!(findings_of(restarted.lines().nth(2).unwrap()), expected_findings);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_permanent_flush_failure_costs_warmth_only() {
    let hostile = scratch("flush-denied");
    let healthy = scratch("flush-clean");
    // Two analyze batches back to back: the second exercises the warm
    // in-memory cache that the failed flush must not have poisoned.
    let input = [
        init_line(1),
        analyze_line(2, &batch(0)),
        analyze_line(3, &batch(4)),
    ]
    .join("\n");

    let vfs = Arc::new(FaultVfs::real(
        FaultSchedule::new().on_path("scan-cache", Fault::Err(io::ErrorKind::PermissionDenied)),
    ));
    let out = serve_transcript(config(vfs, Some(&hostile), RetryPolicy::none()), host(), &input);
    let clean = serve_transcript(clean_config(Some(&healthy)), host(), &input);
    assert_all_results(&out, 3, "flush-denied daemon");
    for idx in [1, 2] {
        assert_eq!(
            findings_of(out.lines().nth(idx).unwrap()),
            findings_of(clean.lines().nth(idx).unwrap()),
            "response {idx} diverged under flush denial"
        );
    }
    // Nothing was persisted — and nothing corrupt was left behind.
    assert!(
        !hostile.join("m").join("scan-cache.json").exists(),
        "denied flush still wrote a cache file"
    );
    std::fs::remove_dir_all(&hostile).ok();
    std::fs::remove_dir_all(&healthy).ok();
}

// ----- TCP: connection drop and overload --------------------------------------

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client { stream, reader }
    }

    fn send(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).unwrap();
        self.stream.write_all(b"\n").unwrap();
    }

    fn recv(&mut self) -> String {
        let mut buf = String::new();
        self.reader.read_line(&mut buf).expect("response line");
        assert!(buf.ends_with('\n'), "truncated response: {buf:?}");
        buf.trim_end_matches('\n').to_owned()
    }
}

#[test]
fn serve_connection_drop_mid_request_leaves_survivors_unaffected() {
    // Serial expectation for the survivor's exact request sequence
    // (model pre-warmed, as the warm connection below does live).
    let expected: Vec<String> = serve_transcript(clean_config(None), host(), &transcript(0))
        .lines()
        .map(str::to_owned)
        .collect();

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let cfg = clean_config(None);
    let server = std::thread::spawn(move || serve_listener(cfg, host(), listener));

    {
        let mut warm = Client::connect(addr);
        warm.send(&init_line(1));
        assert_eq!(warm.recv(), expected[0]);
        warm.send("{\"jsonrpc\":\"2.0\",\"id\":100,\"method\":\"model.load\",\"params\":{\"model\":\"m\"}}");
        assert_eq!(warm.recv(), expected[1]);
    }

    // The dropper: sends an analyze and vanishes without reading. The
    // daemon may compute the response into a closed socket; that must
    // be the client's loss alone.
    {
        let mut dropper = Client::connect(addr);
        dropper.send(&init_line(1));
        let _ = dropper.recv();
        dropper.send(&analyze_line(2, &batch(0)));
    }

    let mut survivor = Client::connect(addr);
    survivor.send(&init_line(1));
    assert_eq!(survivor.recv(), expected[0]);
    survivor.send(&analyze_line(2, &batch(0)));
    assert_eq!(survivor.recv(), expected[2], "survivor diverged after a peer dropped");
    survivor.send("{\"jsonrpc\":\"2.0\",\"id\":9,\"method\":\"shutdown\"}");
    assert_eq!(
        survivor.recv(),
        "{\"jsonrpc\":\"2.0\",\"id\":9,\"result\":{\"ok\":true}}"
    );
    server.join().expect("server thread").expect("server exits cleanly");
}

#[test]
fn serve_overload_answers_every_request_busy_or_ok() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let mut cfg = clean_config(None);
    cfg.queue_capacity = 1;
    let server = std::thread::spawn(move || serve_listener(cfg, host(), listener));

    let mut client = Client::connect(addr);
    client.send(&init_line(1));
    let _ = client.recv();

    // One heavy analyze occupies the executor; a burst of pings then
    // overflows the single-slot queue. Every request must come back —
    // as its result or as a typed `server_busy` — exactly once.
    let heavy: Vec<(String, String)> = (0..150)
        .map(|i| (format!("h{i}.py"), format!("{MISUSE}z{i} = {i}\n")))
        .collect();
    client.send(&analyze_line(1000, &heavy));
    let flood = 60u64;
    for id in 1..=flood {
        client.send(&format!("{{\"jsonrpc\":\"2.0\",\"id\":{id},\"method\":\"ping\"}}"));
    }

    let mut ok = std::collections::HashMap::new();
    let mut busy = std::collections::HashMap::new();
    for _ in 0..=flood {
        let line = client.recv();
        let v: Value = serde_json::from_str(&line).expect("response parses");
        let id = v["id"].as_u64().expect("numeric id");
        match v.get("error") {
            None => {
                assert!(ok.insert(id, line).is_none(), "duplicate ok for id {id}");
            }
            Some(err) => {
                assert_eq!(err["code"].as_i64(), Some(-32000), "unexpected error: {line}");
                assert_eq!(err["data"]["kind"].as_str(), Some("server_busy"));
                assert!(busy.insert(id, line).is_none(), "duplicate busy for id {id}");
            }
        }
    }
    assert!(ok.contains_key(&1000), "the in-flight analyze must complete");
    assert!(!busy.contains_key(&1000), "the accepted analyze cannot also be rejected");
    assert_eq!(
        ok.len() + busy.len(),
        flood as usize + 1,
        "every request answered exactly once"
    );
    assert!(!busy.is_empty(), "a single-slot queue under a 60-ping burst must reject");
    for (id, line) in &ok {
        if *id != 1000 {
            assert_eq!(
                line,
                &format!("{{\"jsonrpc\":\"2.0\",\"id\":{id},\"result\":{{\"pong\":true}}}}"),
                "accepted ping answered wrongly"
            );
        }
    }

    client.send("{\"jsonrpc\":\"2.0\",\"id\":9999,\"method\":\"shutdown\"}");
    assert_eq!(
        client.recv(),
        "{\"jsonrpc\":\"2.0\",\"id\":9999,\"result\":{\"ok\":true}}"
    );
    server.join().expect("server thread").expect("server exits cleanly");
}
