//! Golden-transcript conformance suite for the `namer serve` wire
//! protocol (DESIGN.md §13).
//!
//! Every test drives [`serve_transcript`] — the same `ServeState` the
//! stdio and TCP transports use — with a recorded request transcript
//! and diffs the response bytes **exactly**, so the wire format
//! (envelope key order, error codes, message text, result schemas)
//! cannot drift silently. Responses that embed detection results are
//! reconstructed through the same public `proto` schema structs from a
//! direct `DetectSession` run — pinning the daemon's promise that its
//! findings are byte-identical to CLI-path runs.

use namer::core::{fix_line, Namer, NamerBuilder, NamerConfig, SavedModel, Violation};
use namer::observe::PipelineMetrics;
use namer::patterns::MiningConfig;
use namer::serve::{
    render_notification, render_ok, serve_transcript, AnalyzeResult, CacheFlushResult, Finding,
    FindingsEvent, ModelHost, ModelLoadResult, ServeConfig, Summary,
};
use namer::syntax::{Lang, SourceFile};
use serde_json::{json, Value};
use std::sync::{Arc, OnceLock};

const IDIOM: &str = "class T(TestCase):\n    def t(self):\n        self.assertEqual(v.count, 3)\n";
const MISUSE: &str = "class T(TestCase):\n    def t(self):\n        self.assertTrue(v.count, 3)\n";

/// The byte-exact `initialize` success response for request id 1.
const INIT_OK: &str = "{\"jsonrpc\":\"2.0\",\"id\":1,\"result\":{\"protocol\":1,\
    \"server\":\"namer-serve\",\"version\":\"0.1.0\",\"models\":[\"m\"],\
    \"methods\":[\"initialize\",\"ping\",\"shutdown\",\"file.analyze\",\
    \"model.load\",\"cache.flush\",\"file.watch\",\"file.unwatch\"],\
    \"capabilities\":{\"watch\":true,\"stmt_regions\":true,\
    \"languages\":[\"python\",\"java\",\"javascript\"]}}}";

fn init_line(id: u64) -> String {
    format!("{{\"jsonrpc\":\"2.0\",\"id\":{id},\"method\":\"initialize\",\"params\":{{\"protocol\":1}}}}")
}

fn mini_config() -> NamerConfig {
    NamerConfig {
        mining: MiningConfig {
            min_path_count: 2,
            min_support: 5,
            ..MiningConfig::default()
        },
        labeled_per_class: 3,
        cv_repeats: 2,
        threads: 1,
        ..NamerConfig::default()
    }
}

fn training_corpus() -> Vec<SourceFile> {
    let mut files: Vec<SourceFile> = (0..40)
        .map(|i| {
            SourceFile::new(
                format!("r{}", i % 3),
                format!("f{i}.py"),
                format!("{IDIOM}x{i} = {i}\n"),
                Lang::Python,
            )
        })
        .collect();
    files.push(SourceFile::new("r0", "bug.py", MISUSE, Lang::Python));
    files
}

fn model_json() -> &'static String {
    static JSON: OnceLock<String> = OnceLock::new();
    JSON.get_or_init(|| {
        let commits = vec![(
            "class T(TestCase):\n    def t(self):\n        self.assertTrue(v.count, 1)\n"
                .to_owned(),
            "class T(TestCase):\n    def t(self):\n        self.assertEqual(v.count, 1)\n"
                .to_owned(),
        )];
        let namer = Namer::train(
            &training_corpus(),
            &commits,
            |v: &Violation| v.original.as_str() == "True",
            &mini_config(),
        );
        SavedModel::from_namer(&namer).to_json().expect("model serializes")
    })
}

fn host() -> ModelHost {
    ModelHost::Single {
        name: "m".to_owned(),
        model: Arc::new(SavedModel::from_json(model_json()).expect("model parses")),
    }
}

/// Deterministic daemon config: scrubbed timings, cacheless, metrics
/// aggregate off — responses depend only on the requests.
fn config() -> ServeConfig {
    let mut config = ServeConfig::new(mini_config());
    config.scrub_timings = true;
    config
}

fn serve(input: &str) -> String {
    serve_transcript(config(), host(), input)
}

#[test]
fn serve_golden_handshake_and_shutdown() {
    let input = [
        init_line(1),
        "{\"jsonrpc\":\"2.0\",\"id\":2,\"method\":\"ping\"}".to_owned(),
        "{\"jsonrpc\":\"2.0\",\"id\":3,\"method\":\"shutdown\"}".to_owned(),
        // After shutdown every request — even ping — is refused.
        "{\"jsonrpc\":\"2.0\",\"id\":4,\"method\":\"ping\"}".to_owned(),
    ]
    .join("\n");
    let expected = format!(
        "{INIT_OK}\n\
         {{\"jsonrpc\":\"2.0\",\"id\":2,\"result\":{{\"pong\":true}}}}\n\
         {{\"jsonrpc\":\"2.0\",\"id\":3,\"result\":{{\"ok\":true}}}}\n\
         {{\"jsonrpc\":\"2.0\",\"id\":4,\"error\":{{\"code\":-32005,\
         \"message\":\"server is shutting down\",\"data\":{{\"kind\":\"shutting_down\"}}}}}}\n"
    );
    assert_eq!(serve(&input), expected);
}

#[test]
fn serve_golden_error_paths() {
    let input = [
        // Before initialize, only initialize is accepted.
        "{\"jsonrpc\":\"2.0\",\"id\":1,\"method\":\"ping\"}".to_owned(),
        // Incompatible protocol leaves the connection uninitialized…
        "{\"jsonrpc\":\"2.0\",\"id\":2,\"method\":\"initialize\",\"params\":{\"protocol\":99}}"
            .to_owned(),
        // …so a correct initialize afterwards succeeds…
        "{\"jsonrpc\":\"2.0\",\"id\":1,\"method\":\"initialize\",\"params\":{\"protocol\":1}}"
            .to_owned(),
        // …and a second one is rejected.
        "{\"jsonrpc\":\"2.0\",\"id\":3,\"method\":\"initialize\",\"params\":{\"protocol\":1}}"
            .to_owned(),
        // Malformed JSON: id null.
        "{oops".to_owned(),
        // Unknown method.
        "{\"jsonrpc\":\"2.0\",\"id\":4,\"method\":\"frobnicate\"}".to_owned(),
        // Bad envelope: wrong jsonrpc version (id still echoed).
        "{\"jsonrpc\":\"1.0\",\"id\":5,\"method\":\"ping\"}".to_owned(),
        // Bad envelope: illegal id type.
        "{\"jsonrpc\":\"2.0\",\"id\":[1],\"method\":\"ping\"}".to_owned(),
    ]
    .join("\n");
    let expected = format!(
        "{{\"jsonrpc\":\"2.0\",\"id\":1,\"error\":{{\"code\":-32001,\
         \"message\":\"call initialize before ping\",\"data\":{{\"kind\":\"not_initialized\"}}}}}}\n\
         {{\"jsonrpc\":\"2.0\",\"id\":2,\"error\":{{\"code\":-32003,\
         \"message\":\"unsupported protocol 99 (server speaks 1)\",\
         \"data\":{{\"kind\":\"incompatible_protocol\"}}}}}}\n\
         {INIT_OK}\n\
         {{\"jsonrpc\":\"2.0\",\"id\":3,\"error\":{{\"code\":-32002,\
         \"message\":\"connection already initialized\",\
         \"data\":{{\"kind\":\"already_initialized\"}}}}}}\n\
         {{\"jsonrpc\":\"2.0\",\"id\":null,\"error\":{{\"code\":-32700,\
         \"message\":\"invalid JSON\",\"data\":{{\"kind\":\"parse_error\"}}}}}}\n\
         {{\"jsonrpc\":\"2.0\",\"id\":4,\"error\":{{\"code\":-32601,\
         \"message\":\"unknown method \\\"frobnicate\\\"\",\
         \"data\":{{\"kind\":\"method_not_found\"}}}}}}\n\
         {{\"jsonrpc\":\"2.0\",\"id\":5,\"error\":{{\"code\":-32600,\
         \"message\":\"missing or wrong \\\"jsonrpc\\\" (expected \\\"2.0\\\")\",\
         \"data\":{{\"kind\":\"invalid_request\"}}}}}}\n\
         {{\"jsonrpc\":\"2.0\",\"id\":null,\"error\":{{\"code\":-32600,\
         \"message\":\"request id must be a string, number, or null\",\
         \"data\":{{\"kind\":\"invalid_request\"}}}}}}\n"
    );
    assert_eq!(serve(&input), expected);
}

#[test]
fn serve_golden_out_of_order_and_typed_ids() {
    // Ids are client-chosen labels: out-of-order numbers, strings, and
    // null all echo verbatim, and responses come back in request order.
    let input = [
        init_line(1),
        "{\"jsonrpc\":\"2.0\",\"id\":7,\"method\":\"ping\"}".to_owned(),
        "{\"jsonrpc\":\"2.0\",\"id\":3,\"method\":\"ping\"}".to_owned(),
        "{\"jsonrpc\":\"2.0\",\"id\":\"abc\",\"method\":\"ping\"}".to_owned(),
        "{\"jsonrpc\":\"2.0\",\"id\":null,\"method\":\"ping\"}".to_owned(),
    ]
    .join("\n");
    let expected = format!(
        "{INIT_OK}\n\
         {{\"jsonrpc\":\"2.0\",\"id\":7,\"result\":{{\"pong\":true}}}}\n\
         {{\"jsonrpc\":\"2.0\",\"id\":3,\"result\":{{\"pong\":true}}}}\n\
         {{\"jsonrpc\":\"2.0\",\"id\":\"abc\",\"result\":{{\"pong\":true}}}}\n\
         {{\"jsonrpc\":\"2.0\",\"id\":null,\"result\":{{\"pong\":true}}}}\n"
    );
    assert_eq!(serve(&input), expected);
}

#[test]
fn serve_blank_lines_are_ignored() {
    let input = format!(
        "\n   \n{}\n\n{}\n",
        init_line(1),
        "{\"jsonrpc\":\"2.0\",\"id\":2,\"method\":\"ping\"}"
    );
    let out = serve(&input);
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 2, "blank lines get no response: {out}");
    assert_eq!(lines[0], INIT_OK);
    assert_eq!(lines[1], "{\"jsonrpc\":\"2.0\",\"id\":2,\"result\":{\"pong\":true}}");
}

/// Builds the batch-analyze request line for the two-file batch used by
/// the analyze goldens.
fn analyze_line(id: u64) -> String {
    let req = json!({
        "jsonrpc": "2.0",
        "id": id,
        "method": "file.analyze",
        "params": {"files": [
            {"repo": "client", "path": "bug.py", "content": MISUSE},
            {"repo": "client", "path": "ok.py", "content": IDIOM},
        ]},
    });
    serde_json::to_string(&req).expect("request serializes")
}

#[test]
fn serve_golden_batch_analyze_matches_direct_session() {
    let files = vec![
        SourceFile::new("client", "bug.py", MISUSE, Lang::Python),
        SourceFile::new("client", "ok.py", IDIOM, Lang::Python),
    ];
    // The daemon's promise: responses embed exactly what a direct
    // (CLI-path) session run over the same files produces.
    let mut session = NamerBuilder::new()
        .model(SavedModel::from_json(model_json()).unwrap())
        .config(mini_config())
        .build()
        .expect("session builds");
    let outcome = session.run(&files).expect("cacheless run cannot fail");
    assert!(!outcome.reports.is_empty(), "the bug file must produce a finding");

    let expected_result = |first_request: bool| {
        let findings: Vec<Finding> = outcome
            .reports
            .iter()
            .map(|r| {
                let v = &r.violation;
                let fixed = files
                    .iter()
                    .find(|f| f.repo == v.repo && f.path == v.path)
                    .and_then(|f| f.text.lines().nth(v.line as usize - 1))
                    .and_then(|l| fix_line(l, v.original.as_str(), v.suggested.as_str()));
                Finding {
                    repo: v.repo.clone(),
                    path: v.path.clone(),
                    line: v.line,
                    original: v.original.as_str().to_owned(),
                    suggested: v.suggested.as_str().to_owned(),
                    pattern: v.pattern_ty.to_string(),
                    decision: r.decision,
                    rendered: v.rendered.clone(),
                    fixed,
                }
            })
            .collect();
        // The daemon overlays its serve-level accounting on the run's
        // snapshot: one request executed, one `serve` span, and (first
        // request only) the `model_load` span of the session build.
        let mut metrics = outcome.metrics.clone();
        *metrics.counters.get_mut("serve_requests").expect("full key set") += 1;
        metrics.phases.get_mut("serve").expect("full key set").calls += 1;
        if first_request {
            metrics.phases.get_mut("model_load").expect("full key set").calls += 1;
        }
        metrics.scrub_timings();
        let result = AnalyzeResult {
            summary: Summary {
                files: files.len(),
                findings: findings.len(),
                cache: None,
            },
            findings,
            diagnostics: outcome.diagnostics.clone(),
            metrics,
        };
        serde_json::to_string(&result).expect("result serializes")
    };

    let input = [init_line(1), analyze_line(2), analyze_line(3)].join("\n");
    let expected = format!(
        "{INIT_OK}\n{}\n{}\n",
        render_ok(&Value::from(2), &expected_result(true)),
        render_ok(&Value::from(3), &expected_result(false)),
    );
    let out = serve(&input);
    assert_eq!(out, expected);
    // And the whole transcript is reproducible byte-for-byte.
    assert_eq!(serve(&input), out);
}

#[test]
fn serve_golden_model_load_and_cache_flush() {
    // Reconstruct the expected bodies from an empty collector: these
    // methods run no detection, so their per-request snapshots carry
    // only the serve-level accounting.
    let base = PipelineMetrics::new().snapshot();
    let serve_only = |model_load: bool| {
        let mut metrics = base.clone();
        *metrics.counters.get_mut("serve_requests").expect("full key set") += 1;
        metrics.phases.get_mut("serve").expect("full key set").calls += 1;
        if model_load {
            metrics.phases.get_mut("model_load").expect("full key set").calls += 1;
        }
        metrics
    };
    let load_result = serde_json::to_string(&ModelLoadResult {
        model: "m".to_owned(),
        lang: "Python".to_owned(),
        metrics: serve_only(true),
    })
    .unwrap();
    // Cacheless daemon: nothing to flush, nothing to clear.
    let flush_result = serde_json::to_string(&CacheFlushResult {
        flushed: Vec::new(),
        cleared: Vec::new(),
        metrics: serve_only(false),
    })
    .unwrap();

    let input = [
        init_line(1),
        "{\"jsonrpc\":\"2.0\",\"id\":2,\"method\":\"model.load\",\"params\":{\"model\":\"m\"}}"
            .to_owned(),
        "{\"jsonrpc\":\"2.0\",\"id\":3,\"method\":\"cache.flush\"}".to_owned(),
        "{\"jsonrpc\":\"2.0\",\"id\":4,\"method\":\"model.load\",\"params\":{\"model\":\"nope\"}}"
            .to_owned(),
    ]
    .join("\n");
    let expected = format!(
        "{INIT_OK}\n{}\n{}\n\
         {{\"jsonrpc\":\"2.0\",\"id\":4,\"error\":{{\"code\":-32004,\
         \"message\":\"unknown model \\\"nope\\\" (serving \\\"m\\\")\",\
         \"data\":{{\"kind\":\"model_error\"}}}}}}\n",
        render_ok(&Value::from(2), &load_result),
        render_ok(&Value::from(3), &flush_result),
    );
    assert_eq!(serve(&input), expected);
}

#[test]
fn serve_analyze_param_validation_is_typed() {
    // Schema violations answer with invalid_params + a detail string;
    // the detail text is library-dependent, so assert structure, not
    // bytes.
    let input = [
        init_line(1),
        "{\"jsonrpc\":\"2.0\",\"id\":2,\"method\":\"file.analyze\"}".to_owned(),
        "{\"jsonrpc\":\"2.0\",\"id\":3,\"method\":\"file.analyze\",\
         \"params\":{\"files\":[]}}"
            .to_owned(),
        "{\"jsonrpc\":\"2.0\",\"id\":4,\"method\":\"file.analyze\",\
         \"params\":{\"files\":[{\"path\":\"a.py\",\"content\":\"x = 1\\n\"}],\
         \"changed_only\":true}}"
            .to_owned(),
    ]
    .join("\n");
    let out = serve(&input);
    let lines: Vec<Value> = out
        .lines()
        .map(|l| serde_json::from_str(l).expect("responses are JSON"))
        .collect();
    assert_eq!(lines.len(), 4);
    for (i, expected_msg) in [
        (2, "params.files must not be empty"),
        (3, "changed_only requires a server started with --cache-dir"),
    ] {
        let err = &lines[i]["error"];
        assert_eq!(err["code"], json!(-32602), "line {i}: {err}");
        assert_eq!(err["data"]["kind"], json!("invalid_params"));
        assert_eq!(err["message"], json!(expected_msg));
    }
    // The schema-violation response (missing `files`) carries a detail.
    assert_eq!(lines[1]["error"]["code"], json!(-32602));
    assert_eq!(lines[1]["error"]["data"]["kind"], json!("invalid_params"));
    assert!(lines[1]["error"]["data"]["detail"].is_string());
}

#[test]
fn serve_old_clients_ignore_new_initialize_fields() {
    // The `capabilities` object is additive within protocol revision 1:
    // a client that predates it sees the same known keys it always did
    // (and the method list only ever grows at the tail), so dropping
    // the one unknown key must recover a complete pre-watch handshake.
    let out = serve(&init_line(1));
    let mut resp: Value = serde_json::from_str(out.lines().next().expect("one response"))
        .expect("initialize response is JSON");
    assert_eq!(resp["result"]["capabilities"]["watch"], json!(true));
    assert_eq!(resp["result"]["capabilities"]["stmt_regions"], json!(true));
    assert_eq!(
        resp["result"]["capabilities"]["languages"],
        json!(["python", "java", "javascript"])
    );
    let result = resp["result"].as_object_mut().expect("result is an object");
    assert!(result.remove("capabilities").is_some());
    let known = ["protocol", "server", "version", "models", "methods"];
    assert_eq!(result.len(), known.len(), "unexpected extra keys: {result:?}");
    for key in known {
        assert!(result.contains_key(key), "missing {key}");
    }
    let methods = result["methods"].as_array().expect("methods is an array");
    assert_eq!(
        methods[..6],
        [
            json!("initialize"),
            json!("ping"),
            json!("shutdown"),
            json!("file.analyze"),
            json!("model.load"),
            json!("cache.flush"),
        ],
        "pre-watch methods must keep their positions"
    );
}

/// Builds a `file.watch` request for `bug.py` with the given content.
fn watch_line(id: u64, content: &str) -> String {
    let req = json!({
        "jsonrpc": "2.0",
        "id": id,
        "method": "file.watch",
        "params": {"repo": "client", "path": "bug.py", "content": content},
    });
    serde_json::to_string(&req).expect("request serializes")
}

#[test]
fn serve_watch_pushes_findings_notifications_on_change() {
    // Reconstruct the expected findings for the misuse file from a
    // direct session run — the notification bytes must embed exactly
    // those findings.
    let files = vec![SourceFile::new("client", "bug.py", MISUSE, Lang::Python)];
    let mut session = NamerBuilder::new()
        .model(SavedModel::from_json(model_json()).unwrap())
        .config(mini_config())
        .build()
        .expect("session builds");
    let outcome = session.run(&files).expect("cacheless run cannot fail");
    assert!(!outcome.reports.is_empty(), "the bug file must produce a finding");
    let bug_findings: Vec<Finding> = outcome
        .reports
        .iter()
        .map(|r| {
            let v = &r.violation;
            let fixed = files[0]
                .text
                .lines()
                .nth(v.line as usize - 1)
                .and_then(|l| fix_line(l, v.original.as_str(), v.suggested.as_str()));
            Finding {
                repo: v.repo.clone(),
                path: v.path.clone(),
                line: v.line,
                original: v.original.as_str().to_owned(),
                suggested: v.suggested.as_str().to_owned(),
                pattern: v.pattern_ty.to_string(),
                decision: r.decision,
                rendered: v.rendered.clone(),
                fixed,
            }
        })
        .collect();

    let analyze_bug = |id: u64| {
        let req = json!({
            "jsonrpc": "2.0",
            "id": id,
            "method": "file.analyze",
            "params": {"files": [
                {"repo": "client", "path": "bug.py", "content": MISUSE},
            ]},
        });
        serde_json::to_string(&req).expect("request serializes")
    };
    let input = [
        init_line(1),
        // Subscribe: baseline carries the findings, no notification.
        watch_line(2, MISUSE),
        // Unchanged content → unchanged findings → silence.
        watch_line(3, MISUSE),
        // The fix lands: findings vanish → push an empty set.
        watch_line(4, IDIOM),
        // The bug returns via plain analyze → push the findings again.
        analyze_bug(5),
        "{\"jsonrpc\":\"2.0\",\"id\":6,\"method\":\"file.unwatch\",\
         \"params\":{\"repo\":\"client\",\"path\":\"bug.py\"}}"
            .to_owned(),
        // Unsubscribed: the same analyze now pushes nothing.
        analyze_bug(7),
    ]
    .join("\n");
    let out = serve(&input);
    let lines: Vec<&str> = out.lines().collect();
    // 7 responses + 2 notifications (after ids 4 and 5).
    assert_eq!(lines.len(), 9, "unexpected line count:\n{out}");
    assert_eq!(lines[0], INIT_OK);

    let watch_ok: Value = serde_json::from_str(lines[1]).expect("watch response is JSON");
    assert_eq!(watch_ok["id"], json!(2));
    assert_eq!(watch_ok["result"]["watching"], json!(1));
    let baseline = watch_ok["result"]["findings"].as_array().expect("findings array");
    assert_eq!(baseline.len(), bug_findings.len());
    assert_eq!(watch_ok["result"]["metrics"]["counters"]["watch_events"], json!(0));

    let rewatch: Value = serde_json::from_str(lines[2]).expect("rewatch response is JSON");
    assert_eq!(rewatch["id"], json!(3));
    assert_eq!(rewatch["result"]["findings"], watch_ok["result"]["findings"]);
    assert_eq!(rewatch["result"]["metrics"]["counters"]["watch_events"], json!(0));

    let fixed: Value = serde_json::from_str(lines[3]).expect("fixed response is JSON");
    assert_eq!(fixed["id"], json!(4));
    assert_ne!(
        fixed["result"]["findings"], watch_ok["result"]["findings"],
        "applying the fix must change the findings"
    );
    assert_eq!(fixed["result"]["metrics"]["counters"]["watch_events"], json!(1));
    // The notification is id-less and pushes the file's full new set —
    // exactly what the triggering response reported.
    let note: Value = serde_json::from_str(lines[4]).expect("notification is JSON");
    assert_eq!(note["method"], json!("file.findings"));
    assert!(note.get("id").is_none(), "notifications carry no id: {note}");
    assert_eq!(note["params"]["repo"], json!("client"));
    assert_eq!(note["params"]["path"], json!("bug.py"));
    assert_eq!(note["params"]["findings"], fixed["result"]["findings"]);

    let analyzed: Value = serde_json::from_str(lines[5]).expect("analyze response is JSON");
    assert_eq!(analyzed["id"], json!(5));
    assert_eq!(analyzed["result"]["summary"]["findings"], json!(bug_findings.len()));
    assert_eq!(analyzed["result"]["metrics"]["counters"]["watch_events"], json!(1));
    let event = FindingsEvent {
        repo: "client".to_owned(),
        path: "bug.py".to_owned(),
        findings: bug_findings,
    };
    assert_eq!(
        lines[6],
        render_notification(
            "file.findings",
            &serde_json::to_string(&event).expect("event serializes"),
        )
    );

    assert_eq!(
        lines[7],
        render_ok(&Value::from(6), "{\"removed\":true,\"watching\":0}")
    );
    let after: Value = serde_json::from_str(lines[8]).expect("final analyze response is JSON");
    assert_eq!(after["id"], json!(7));
    assert_eq!(after["result"]["metrics"]["counters"]["watch_events"], json!(0));

    // The whole watch transcript is reproducible byte-for-byte.
    assert_eq!(serve(&input), out);
}
