//! Regression suite for long-lived [`DetectSession`] reuse — the
//! residency contract `namer serve` leans on (DESIGN.md §13).
//!
//! Historically the session was built for one `run` per process:
//! seeded ingest diagnostics re-reported on every run, the cold-cache
//! degrade counter re-fired, and metrics accumulated across runs. A
//! daemon calls `run` on the same session for every request, so each
//! run must be self-contained: per-run metrics, first-run-only seeded
//! diagnostics, and an explicit flush lifecycle when autosave is off.

use namer::core::{
    CacheLoadStatus, CorpusReader, DetectSession, Fault, FaultSchedule, FaultVfs, Namer,
    NamerBuilder, NamerConfig, Report, SavedModel, Violation,
};
use namer::observe::Counter;
use namer::patterns::MiningConfig;
use namer::syntax::{Lang, SourceFile};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

const IDIOM: &str = "class T(TestCase):\n    def t(self):\n        self.assertEqual(v.count, 3)\n";
const MISUSE: &str = "class T(TestCase):\n    def t(self):\n        self.assertTrue(v.count, 3)\n";

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "namer-session-reuse-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn write(dir: &Path, rel: &str, contents: &[u8]) {
    let path = dir.join(rel);
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(path, contents).unwrap();
}

fn corpus() -> Vec<SourceFile> {
    let mut files: Vec<SourceFile> = (0..10)
        .map(|i| {
            SourceFile::new(
                format!("r{}", i % 3),
                format!("f{i}.py"),
                format!("{IDIOM}x{i} = {i}\n"),
                Lang::Python,
            )
        })
        .collect();
    files.push(SourceFile::new("r0", "bug.py", MISUSE, Lang::Python));
    files
}

fn model_json() -> &'static String {
    static JSON: OnceLock<String> = OnceLock::new();
    JSON.get_or_init(|| {
        let commits = vec![(
            "class T(TestCase):\n    def t(self):\n        self.assertTrue(v.count, 1)\n"
                .to_owned(),
            "class T(TestCase):\n    def t(self):\n        self.assertEqual(v.count, 1)\n"
                .to_owned(),
        )];
        let config = NamerConfig {
            mining: MiningConfig {
                min_path_count: 2,
                min_support: 5,
                ..MiningConfig::default()
            },
            labeled_per_class: 3,
            cv_repeats: 2,
            ..NamerConfig::default()
        };
        let mut training = corpus();
        for i in 0..30 {
            training.push(SourceFile::new(
                "rt",
                format!("t{i}.py"),
                format!("{IDIOM}t{i} = {i}\n"),
                Lang::Python,
            ));
        }
        let namer = Namer::train(
            &training,
            &commits,
            |v: &Violation| v.original.as_str() == "True",
            &config,
        );
        SavedModel::from_namer(&namer).to_json().expect("model serializes")
    })
}

fn builder() -> NamerBuilder {
    NamerBuilder::new().model(SavedModel::from_json(model_json()).unwrap())
}

fn report_strings(reports: &[Report]) -> Vec<String> {
    reports.iter().map(|r| r.to_string()).collect()
}

#[test]
fn session_back_to_back_detects_are_identical() {
    let files = corpus();
    let mut session: DetectSession = builder().build().expect("session builds");
    let first = session.run(&files).expect("first run");
    let second = session.run(&files).expect("second run");
    assert!(!first.reports.is_empty());
    assert_eq!(
        report_strings(&first.reports),
        report_strings(&second.reports),
        "a reused session changed its findings"
    );
    // Metrics are per-run, not cumulative: after zeroing wall-clock the
    // two snapshots are byte-identical.
    let (mut m1, mut m2) = (first.metrics, second.metrics);
    m1.scrub_timings();
    m2.scrub_timings();
    assert_eq!(
        serde_json::to_string(&m1).unwrap(),
        serde_json::to_string(&m2).unwrap(),
        "metrics leaked across runs of one session"
    );
}

#[test]
fn session_seeded_ingest_diagnostics_report_once() {
    let dir = scratch("quarantine");
    for i in 0..6 {
        write(&dir, &format!("r{}/f{i}.py", i % 2), IDIOM.as_bytes());
    }
    write(&dir, "r0/bug.py", MISUSE.as_bytes());
    write(&dir, "r1/locked.py", IDIOM.as_bytes());

    let vfs = FaultVfs::real(
        FaultSchedule::new().on_path("locked.py", Fault::Err(io::ErrorKind::PermissionDenied)),
    );
    let mut reader = CorpusReader::new(&vfs);
    let files = reader.collect_sources(&dir, Lang::Python).unwrap();
    let diag = reader.finish();
    assert_eq!(diag.quarantined.len(), 1);

    let mut session = builder().ingest_diagnostics(diag).build().unwrap();
    let first = session.run(&files).unwrap();
    let second = session.run(&files).unwrap();
    // The ingest salt belongs to the run that consumed it…
    assert_eq!(first.diagnostics.quarantined.len(), 1);
    assert_eq!(first.metrics.counter(Counter::QuarantinedFiles), 1);
    // …and must not be re-reported by a reused session.
    assert!(second.diagnostics.quarantined.is_empty());
    assert_eq!(second.metrics.counter(Counter::QuarantinedFiles), 0);
    assert_eq!(
        report_strings(&first.reports),
        report_strings(&second.reports)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn session_cold_cache_degrade_counts_once() {
    let dir = scratch("degrade");
    write(&dir, "scan-cache.json", b"\x00not a cache container\xff");
    let files = corpus();

    let mut session = builder().cache_dir(&dir).build().unwrap();
    assert!(
        !matches!(session.cache_status(), Some(CacheLoadStatus::Warm(_))),
        "garbage cache loaded warm: {:?}",
        session.cache_status()
    );
    let first = session.run(&files).unwrap();
    let second = session.run(&files).unwrap();
    assert_eq!(first.metrics.counter(Counter::CacheDegradedCold), 1);
    assert_eq!(
        second.metrics.counter(Counter::CacheDegradedCold),
        0,
        "the cold-start degrade re-fired on a reused session"
    );
    assert_eq!(
        report_strings(&first.reports),
        report_strings(&second.reports)
    );
    // The second run reuses the first run's in-memory entries.
    let cache = second.cache.as_ref().expect("cached session");
    assert_eq!(cache.reused, files.len());
    assert_eq!(cache.fresh, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn session_deferred_flush_lifecycle() {
    let dir = scratch("flush");
    let cache_path = dir.join("scan-cache.json");
    let files = corpus();

    let mut session = builder()
        .cache_dir(&dir)
        .cache_autosave(false)
        .build()
        .unwrap();
    let first = session.run(&files).unwrap();
    assert!(
        !cache_path.exists(),
        "autosave(false) still wrote the cache during run"
    );
    assert_eq!(session.cache_dirty(), Some(true));

    // flush → saved; a second flush of a clean cache is a no-op.
    assert!(session.flush_cache().unwrap());
    assert!(cache_path.exists());
    assert_eq!(session.cache_dirty(), Some(false));
    assert!(!session.flush_cache().unwrap());

    // A warm rerun on the same session reuses every entry.
    let second = session.run(&files).unwrap();
    assert_eq!(second.cache.as_ref().unwrap().reused, files.len());
    assert_eq!(
        report_strings(&first.reports),
        report_strings(&second.reports)
    );

    // clear_cache empties the in-memory cache and marks it dirty; the
    // next run re-scans everything from scratch, still correct.
    assert!(session.clear_cache());
    assert_eq!(session.cache_dirty(), Some(true));
    assert_eq!(session.cache_entries(), Some(0));
    let third = session.run(&files).unwrap();
    assert_eq!(third.cache.as_ref().unwrap().fresh, files.len());
    assert_eq!(
        report_strings(&first.reports),
        report_strings(&third.reports)
    );
    assert!(session.flush_cache().unwrap());

    // What the flush persisted comes up warm in a fresh session.
    let mut fresh = builder().cache_dir(&dir).build().unwrap();
    assert!(
        matches!(fresh.cache_status(), Some(CacheLoadStatus::Warm(_))),
        "flushed cache did not load warm: {:?}",
        fresh.cache_status()
    );
    let fourth = fresh.run(&files).unwrap();
    assert_eq!(fourth.cache.as_ref().unwrap().reused, files.len());
    assert_eq!(
        report_strings(&first.reports),
        report_strings(&fourth.reports)
    );
    std::fs::remove_dir_all(&dir).ok();
}
