//! Integration: pattern-axis sharding and the builder/session API
//! (DESIGN.md §9).
//!
//! The contract under test: a scan's output is a pure function of the model
//! and the input files — worker threads and pattern shards are scheduling
//! knobs only. Every (file-threads × pattern-shards) grid point must produce
//! byte-identical reports.

use namer::core::{CacheLoadStatus, Namer, NamerBuilder, NamerConfig, NamerError, SavedModel};
use namer::corpus::{CorpusConfig, Generator};
use namer::patterns::{MiningConfig, ShardPlan};
use namer::syntax::{Lang, SourceFile};

fn config() -> NamerConfig {
    NamerConfig {
        mining: MiningConfig {
            min_path_count: 4,
            min_support: 15,
            ..MiningConfig::default()
        },
        labeled_per_class: 10,
        cv_repeats: 3,
        ..NamerConfig::default()
    }
}

/// Trains once and returns the corpus plus the model snapshot the grid
/// points rebuild their sessions from.
fn trained_model(seed: u64) -> (Vec<SourceFile>, String) {
    trained_model_for(Lang::Python, seed)
}

fn trained_model_for(lang: Lang, seed: u64) -> (Vec<SourceFile>, String) {
    let corpus = Generator::new(CorpusConfig::small(lang)).generate(seed);
    let oracle = corpus.oracle();
    let commits: Vec<(String, String)> = corpus
        .commits
        .iter()
        .map(|c| (c.before.clone(), c.after.clone()))
        .collect();
    let namer = Namer::train(
        &corpus.files,
        &commits,
        |v| {
            oracle
                .label(&v.repo, &v.path, v.line, v.original.as_str(), v.suggested.as_str())
                .is_some()
        },
        &config(),
    );
    let json = SavedModel::from_namer(&namer).to_json().expect("model serialises");
    (corpus.files, json)
}

/// Full-fidelity scan key: rendered reports with decision bits plus the
/// aggregate scan statistics.
fn scan_key(files: &[SourceFile], json: &str, threads: usize, shards: usize) -> String {
    let mut session = NamerBuilder::new()
        .model(SavedModel::from_json(json).expect("model parses"))
        .config(config())
        .threads(threads)
        // min_patterns: 0 so small mined sets still shard — the grid must
        // exercise real partitions, not the size fallback.
        .shard_plan(ShardPlan {
            shards,
            min_patterns: 0,
        })
        .build()
        .expect("saved source builds");
    let outcome = session.run(files).expect("cacheless run");
    let mut key = String::new();
    for r in &outcome.reports {
        key.push_str(&format!("{r} {:x}\n", r.decision.to_bits()));
    }
    key.push_str(&format!(
        "raw={} files={} repos={}\n",
        outcome.scan.raw_violation_count,
        outcome.scan.files_with_violation,
        outcome.scan.repos_with_violation
    ));
    key
}

#[test]
fn report_bytes_are_identical_across_the_thread_shard_grid() {
    let (files, json) = trained_model(2021);
    let baseline = scan_key(&files, &json, 1, 1);
    assert!(!baseline.is_empty());
    for threads in [1usize, 2, 8] {
        for shards in [1usize, 2, 4] {
            assert_eq!(
                baseline,
                scan_key(&files, &json, threads, shards),
                "diverged at threads={threads} shards={shards}"
            );
        }
    }
}

#[test]
fn js_report_bytes_are_identical_across_the_thread_shard_grid() {
    // The JavaScript frontend obeys the same pure-function contract as the
    // other languages over the full (file-threads × pattern-shards) grid.
    let (files, json) = trained_model_for(Lang::Js, 2025);
    let baseline = scan_key(&files, &json, 1, 1);
    for threads in [1usize, 2, 8] {
        for shards in [1usize, 2, 4] {
            assert_eq!(
                baseline,
                scan_key(&files, &json, threads, shards),
                "diverged at threads={threads} shards={shards}"
            );
        }
    }
}

#[test]
fn cached_session_round_trips_and_tracks_changed_files() {
    let (mut files, json) = trained_model(2023);
    let dir = std::env::temp_dir().join(format!("namer-shard-session-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let build = || {
        NamerBuilder::new()
            .model(SavedModel::from_json(&json).expect("model parses"))
            .config(config())
            .shard_plan(ShardPlan {
                shards: 4,
                min_patterns: 0,
            })
            .cache_dir(&dir)
            .build()
            .expect("saved source builds")
    };

    // Cold run: nothing cached, every file is "changed".
    let mut cold = build();
    assert_eq!(cold.cache_status(), Some(CacheLoadStatus::Cold));
    let cold_out = cold.run(&files).expect("cold run");
    let cold_cache = cold_out.cache.as_ref().expect("cache accounting");
    assert_eq!(cold_cache.fresh, files.len());
    assert_eq!(cold_cache.changed.len(), files.len());

    // Warm run over identical inputs: all reused, nothing changed, and the
    // reports are byte-identical to the cold (sharded) scan.
    let mut warm = build();
    assert!(matches!(warm.cache_status(), Some(CacheLoadStatus::Warm(_))));
    let warm_out = warm.run(&files).expect("warm run");
    let warm_cache = warm_out.cache.as_ref().expect("cache accounting");
    assert_eq!(warm_cache.fresh, 0);
    assert!(warm_cache.changed.is_empty());
    let render = |reports: &[namer::core::Report]| {
        reports.iter().map(|r| r.to_string()).collect::<Vec<_>>()
    };
    assert_eq!(render(&cold_out.reports), render(&warm_out.reports));

    // Edit one file: exactly that file re-scans and shows up as changed.
    files[0].text.push_str("\nzz_extra = 1\n");
    let mut dirty = build();
    let dirty_out = dirty.run(&files).expect("dirty run");
    let dirty_cache = dirty_out.cache.as_ref().expect("cache accounting");
    assert_eq!(
        dirty_cache.changed,
        vec![(files[0].repo.clone(), files[0].path.clone())]
    );
    assert_eq!(dirty_cache.fresh, 1);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn builder_rejects_invalid_configurations() {
    // No source at all.
    assert!(matches!(
        NamerBuilder::new().build(),
        Err(NamerError::InvalidConfig(_))
    ));

    // A trained system carries its own config; overriding it is an error.
    let (_, json) = trained_model(2024);
    let namer = SavedModel::from_json(&json)
        .expect("model parses")
        .into_namer(config());
    assert!(matches!(
        NamerBuilder::new().namer(namer).config(config()).build(),
        Err(NamerError::InvalidConfig(_))
    ));

    // Language conflicts with the saved model's.
    assert!(matches!(
        NamerBuilder::new()
            .model(SavedModel::from_json(&json).expect("model parses"))
            .lang(Lang::Java)
            .build(),
        Err(NamerError::InvalidConfig(_))
    ));
}
